//! Critical edges and critical-edge splitting.
//!
//! An edge `m → n` is *critical* when `m` has several successors and `n`
//! several predecessors. Code cannot be inserted "on" such an edge without
//! either duplicating it on other paths out of `m` or on other paths into
//! `n`. The node-insertion formulation of lazy code motion (and the paper's
//! optimality results) presuppose a graph without critical edges; the
//! edge-insertion formulation splits them lazily, only where an insertion is
//! actually required.

use crate::function::{BlockId, Edge, Function};

/// Lists the critical edges of `f` in deterministic (source, slot) order.
pub fn critical_edges(f: &Function) -> Vec<Edge> {
    let preds = f.preds();
    let mut out = Vec::new();
    for b in f.block_ids() {
        let nsuccs = f.succs(b).count();
        if nsuccs < 2 {
            continue;
        }
        for (i, to) in f.succs(b).enumerate() {
            if preds[to.index()].len() >= 2 {
                out.push(Edge {
                    from: b,
                    to,
                    succ_index: i as u8,
                });
            }
        }
    }
    out
}

/// The result of [`split_critical_edges`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SplitOutcome {
    /// For every split edge, the original edge and the synthetic block now
    /// sitting on it.
    pub splits: Vec<(Edge, BlockId)>,
}

impl SplitOutcome {
    /// Number of edges that were split.
    pub fn len(&self) -> usize {
        self.splits.len()
    }

    /// Returns `true` if the function had no critical edges.
    pub fn is_empty(&self) -> bool {
        self.splits.is_empty()
    }
}

/// Splits every critical edge of `f` by inserting fresh empty blocks, and
/// returns the mapping. Afterwards the function has no critical edges, and
/// any [`EdgeList`](crate::EdgeList) snapshots are invalidated.
pub fn split_critical_edges(f: &mut Function) -> SplitOutcome {
    let edges = critical_edges(f);
    let mut splits = Vec::with_capacity(edges.len());
    for e in edges {
        let mid = f.split_edge(e.from, e.succ_index);
        splits.push((e, mid));
    }
    SplitOutcome { splits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_function;

    #[test]
    fn detects_and_splits_critical_edges() {
        // entry branches to {a, join}; a jumps to join: (entry → join) is
        // critical.
        let mut f = parse_function(
            "fn c {
             entry:
               br c, a, join
             a:
               jmp join
             join:
               ret
             }",
        )
        .unwrap();
        let crit = critical_edges(&f);
        assert_eq!(crit.len(), 1);
        assert_eq!(crit[0].from, f.entry());
        assert_eq!(crit[0].to, f.block_by_name("join").unwrap());
        assert_eq!(crit[0].succ_index, 1);

        let outcome = split_critical_edges(&mut f);
        assert_eq!(outcome.len(), 1);
        assert!(!outcome.is_empty());
        assert!(critical_edges(&f).is_empty());
        crate::verify(&f).unwrap();
    }

    #[test]
    fn loop_with_two_exits_has_critical_edges() {
        let mut f = parse_function(
            "fn l {
             entry:
               jmp head
             head:
               br c, body, done
             body:
               br d, head, done
             done:
               ret
             }",
        )
        .unwrap();
        // body → head is critical (body has 2 succs, head has 2 preds);
        // both edges into done are critical.
        let crit = critical_edges(&f);
        assert_eq!(crit.len(), 3);
        split_critical_edges(&mut f);
        assert!(critical_edges(&f).is_empty());
        crate::verify(&f).unwrap();
    }

    #[test]
    fn diamond_has_no_critical_edges() {
        let f = parse_function(
            "fn d {
             entry:
               br c, a, b
             a:
               jmp join
             b:
               jmp join
             join:
               ret
             }",
        )
        .unwrap();
        assert!(critical_edges(&f).is_empty());
    }

    #[test]
    fn parallel_branch_edges_are_critical() {
        // Both branch targets are the same block with another pred: two
        // critical edges with distinct succ indices.
        let f = parse_function(
            "fn p {
             entry:
               jmp top
             top:
               br c, join, join
             join:
               ret
             }",
        )
        .unwrap();
        let crit = critical_edges(&f);
        assert_eq!(crit.len(), 2);
        assert_ne!(crit[0].succ_index, crit[1].succ_index);
    }
}
