//! Natural-loop discovery from back edges.

use crate::function::{BlockId, Function};
use crate::graph::dom::{dominators, DomTree};

/// A natural loop: a back edge `latch → header` where the header dominates
/// the latch, together with the loop body.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// The latch (source of the back edge).
    pub latch: BlockId,
    /// All blocks in the loop, header first, otherwise in discovery order.
    pub body: Vec<BlockId>,
}

impl NaturalLoop {
    /// Returns `true` if `b` belongs to the loop body.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }

    /// Number of blocks in the loop.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Natural loops are never empty (the header is always a member).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Finds all natural loops of `f`, one per back edge, in deterministic
/// order. Two back edges sharing a header yield two loops (callers may merge
/// them if they need per-header loops).
///
/// Irreducible cycles (cycles whose "entry" does not dominate the rest) have
/// no back edge in the dominator sense and therefore produce no natural
/// loop; this matches the classic definition.
pub fn natural_loops(f: &Function) -> Vec<NaturalLoop> {
    let dom = dominators(f);
    let preds = f.preds();
    let mut loops = Vec::new();
    for latch in f.block_ids() {
        for header in f.succs(latch) {
            if dom.idom(latch).is_some() && dom.dominates(header, latch) {
                loops.push(collect_loop(f, &preds, &dom, header, latch));
            }
        }
    }
    loops
}

fn collect_loop(
    f: &Function,
    preds: &[Vec<BlockId>],
    _dom: &DomTree,
    header: BlockId,
    latch: BlockId,
) -> NaturalLoop {
    let mut in_loop = vec![false; f.num_blocks()];
    in_loop[header.index()] = true;
    let mut body = vec![header];
    let mut stack = Vec::new();
    if !in_loop[latch.index()] {
        in_loop[latch.index()] = true;
        body.push(latch);
        stack.push(latch);
    }
    while let Some(b) = stack.pop() {
        for &p in &preds[b.index()] {
            if !in_loop[p.index()] {
                in_loop[p.index()] = true;
                body.push(p);
                stack.push(p);
            }
        }
    }
    NaturalLoop {
        header,
        latch,
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_function;

    #[test]
    fn finds_simple_loop() {
        let f = parse_function(
            "fn l {
             entry:
               jmp head
             head:
               br c, body, done
             body:
               jmp head
             done:
               ret
             }",
        )
        .unwrap();
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        let get = |n: &str| f.block_by_name(n).unwrap();
        assert_eq!(l.header, get("head"));
        assert_eq!(l.latch, get("body"));
        assert_eq!(l.len(), 2);
        assert!(l.contains(get("head")) && l.contains(get("body")));
        assert!(!l.contains(f.entry()));
        assert!(!l.is_empty());
    }

    #[test]
    fn finds_nested_loops() {
        let f = parse_function(
            "fn n {
             entry:
               jmp outer
             outer:
               br c, inner, done
             inner:
               br d, inner, outer_latch
             outer_latch:
               jmp outer
             done:
               ret
             }",
        )
        .unwrap();
        let loops = natural_loops(&f);
        assert_eq!(loops.len(), 2);
        let get = |n: &str| f.block_by_name(n).unwrap();
        let inner = loops.iter().find(|l| l.header == get("inner")).unwrap();
        let outer = loops.iter().find(|l| l.header == get("outer")).unwrap();
        assert_eq!(inner.len(), 1);
        assert_eq!(outer.len(), 3);
        assert!(outer.contains(get("inner")));
    }

    #[test]
    fn acyclic_graph_has_no_loops() {
        let f = parse_function(
            "fn a {
             entry:
               br c, l, r
             l:
               jmp j
             r:
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        assert!(natural_loops(&f).is_empty());
    }
}
