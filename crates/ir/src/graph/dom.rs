//! Dominator and postdominator trees (Cooper–Harvey–Kennedy algorithm).

use crate::function::{BlockId, Function};
use crate::graph::order::{postorder, rpo_index};

/// An (immediate-)dominator tree.
///
/// The root's immediate dominator is itself; blocks unreachable from the
/// root have no entry ([`DomTree::idom`] returns `None`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DomTree {
    root: BlockId,
    idom: Vec<Option<BlockId>>,
}

impl DomTree {
    /// The tree's root (entry for dominators, exit for postdominators).
    pub fn root(&self) -> BlockId {
        self.root
    }

    /// The immediate dominator of `b` (the root maps to itself), or `None`
    /// if `b` is unreachable from the root.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(parent) if parent != cur => cur = parent,
                _ => return false,
            }
        }
    }

    /// Iterates over `b`'s dominators from `b` up to the root (inclusive).
    pub fn ancestors(&self, b: BlockId) -> impl Iterator<Item = BlockId> + '_ {
        let mut cur = Some(b);
        std::iter::from_fn(move || {
            let this = cur?;
            cur = match self.idom(this) {
                Some(parent) if parent != this => Some(parent),
                _ => None,
            };
            Some(this)
        })
    }
}

/// Core of Cooper–Harvey–Kennedy "A Simple, Fast Dominance Algorithm":
/// generic over edge direction via closures producing predecessors.
fn chk(
    nblocks: usize,
    root: BlockId,
    order_po: &[BlockId],
    po_index: &[usize],
    preds: &[Vec<BlockId>],
) -> Vec<Option<BlockId>> {
    let mut idom: Vec<Option<BlockId>> = vec![None; nblocks];
    idom[root.index()] = Some(root);
    let mut changed = true;
    while changed {
        changed = false;
        // Reverse postorder (skip the root).
        for &b in order_po.iter().rev() {
            if b == root {
                continue;
            }
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.index()] {
                if idom[p.index()].is_none() {
                    continue; // not yet processed / unreachable
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, po_index, cur, p),
                });
            }
            if new_idom != idom[b.index()] && new_idom.is_some() {
                idom[b.index()] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

fn intersect(
    idom: &[Option<BlockId>],
    po_index: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while po_index[a.index()] < po_index[b.index()] {
            a = idom[a.index()].expect("processed block has idom");
        }
        while po_index[b.index()] < po_index[a.index()] {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

/// Computes the dominator tree rooted at the entry block.
pub fn dominators(f: &Function) -> DomTree {
    let po = postorder(f);
    let po_index = rpo_index(f, &po);
    let preds = f.preds();
    let idom = chk(f.num_blocks(), f.entry(), &po, &po_index, &preds);
    DomTree {
        root: f.entry(),
        idom,
    }
}

/// Computes the postdominator tree rooted at the exit block.
///
/// Requires the function to be exit-reachable from every block (the
/// [verifier](crate::verify)'s invariant); blocks violating that have no
/// entry in the tree.
pub fn postdominators(f: &Function) -> DomTree {
    // Postorder of the reverse CFG, rooted at exit.
    let n = f.num_blocks();
    let preds = f.preds();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut stack: Vec<(BlockId, usize)> = vec![(f.exit(), 0)];
    visited[f.exit().index()] = true;
    while let Some(&mut (b, ref mut slot)) = stack.last_mut() {
        match preds[b.index()].get(*slot).copied() {
            Some(s) => {
                *slot += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            }
            None => {
                order.push(b);
                stack.pop();
            }
        }
    }
    let po_index = rpo_index(f, &order);
    // "Predecessors" in the reverse graph are CFG successors.
    let mut succs: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    for b in f.block_ids() {
        succs[b.index()] = f.succs(b).collect();
    }
    let idom = chk(n, f.exit(), &order, &po_index, &succs);
    DomTree {
        root: f.exit(),
        idom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_function;

    fn example() -> crate::Function {
        parse_function(
            "fn d {
             entry:
               br c, a, b
             a:
               jmp join
             b:
               br c, join, b2
             b2:
               jmp join
             join:
               ret
             }",
        )
        .unwrap()
    }

    #[test]
    fn idoms_of_diamond() {
        let f = example();
        let dom = dominators(&f);
        let get = |n: &str| f.block_by_name(n).unwrap();
        assert_eq!(dom.idom(get("a")), Some(f.entry()));
        assert_eq!(dom.idom(get("b")), Some(f.entry()));
        assert_eq!(dom.idom(get("b2")), Some(get("b")));
        assert_eq!(dom.idom(get("join")), Some(f.entry()));
        assert!(dom.dominates(f.entry(), get("join")));
        assert!(!dom.dominates(get("a"), get("join")));
        assert!(dom.dominates(get("b"), get("b2")));
        assert_eq!(
            dom.ancestors(get("b2")).collect::<Vec<_>>(),
            vec![get("b2"), get("b"), f.entry()]
        );
    }

    #[test]
    fn postdominators_mirror() {
        let f = example();
        let pdom = postdominators(&f);
        let get = |n: &str| f.block_by_name(n).unwrap();
        assert_eq!(pdom.root(), f.exit());
        assert_eq!(pdom.idom(get("a")), Some(get("join")));
        assert_eq!(pdom.idom(get("b")), Some(get("join")));
        assert!(pdom.dominates(get("join"), f.entry()));
    }

    #[test]
    fn loop_idoms() {
        let f = parse_function(
            "fn l {
             entry:
               jmp head
             head:
               br c, body, done
             body:
               br d, head, latch
             latch:
               jmp head
             done:
               ret
             }",
        )
        .unwrap();
        let dom = dominators(&f);
        let get = |n: &str| f.block_by_name(n).unwrap();
        assert_eq!(dom.idom(get("head")), Some(f.entry()));
        assert_eq!(dom.idom(get("body")), Some(get("head")));
        assert_eq!(dom.idom(get("latch")), Some(get("body")));
        assert_eq!(dom.idom(get("done")), Some(get("head")));
    }
}
