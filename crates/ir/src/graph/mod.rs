//! Graph algorithms over a function's CFG.
//!
//! All algorithms are iterative (no recursion, safe on huge graphs) and
//! deterministic: ties are broken by successor order and block index.

mod critical;
mod dom;
mod loops;
mod order;

pub use critical::{critical_edges, split_critical_edges, SplitOutcome};
pub use dom::{dominators, postdominators, DomTree};
pub use loops::{natural_loops, NaturalLoop};
pub use order::{postorder, reverse_postorder, rpo_index};

use crate::function::{BlockId, Function};

/// Returns, per block, whether it is reachable from the entry.
pub fn reachable_from_entry(f: &Function) -> Vec<bool> {
    let mut seen = vec![false; f.num_blocks()];
    let mut stack = vec![f.entry()];
    seen[f.entry().index()] = true;
    while let Some(b) = stack.pop() {
        for s in f.succs(b) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    seen
}

/// Returns, per block, whether the exit is reachable from it.
pub fn reaches_exit(f: &Function) -> Vec<bool> {
    let preds = f.preds();
    let mut seen = vec![false; f.num_blocks()];
    let mut stack = vec![f.exit()];
    seen[f.exit().index()] = true;
    while let Some(b) = stack.pop() {
        for &p in &preds[b.index()] {
            if !seen[p.index()] {
                seen[p.index()] = true;
                stack.push(p);
            }
        }
    }
    seen
}

/// Enumerates every entry→exit path of an **acyclic** function, calling
/// `visit` with each path (a slice of block ids). Returns the number of
/// paths visited, or `None` if a cycle was encountered or more than
/// `max_paths` paths exist.
///
/// Used by the optimality checkers to validate the paper's theorems
/// exhaustively on small acyclic graphs.
pub fn for_each_path(
    f: &Function,
    max_paths: usize,
    mut visit: impl FnMut(&[BlockId]),
) -> Option<usize> {
    let mut path = vec![f.entry()];
    let mut on_path = vec![false; f.num_blocks()];
    on_path[f.entry().index()] = true;
    // Iterative DFS over path prefixes: `cursor[i]` is the next successor
    // slot of `path[i]` to explore.
    let mut cursor = vec![0usize];
    let mut count = 0usize;
    while let Some(&b) = path.last() {
        if b == f.exit() {
            count += 1;
            if count > max_paths {
                return None;
            }
            visit(&path);
            on_path[b.index()] = false;
            path.pop();
            cursor.pop();
            continue;
        }
        let slot = *cursor.last().expect("cursor parallels path");
        match f.succs(b).nth(slot) {
            Some(next) => {
                *cursor.last_mut().expect("cursor parallels path") += 1;
                if on_path[next.index()] {
                    return None; // cycle
                }
                on_path[next.index()] = true;
                path.push(next);
                cursor.push(0);
            }
            None => {
                on_path[b.index()] = false;
                path.pop();
                cursor.pop();
            }
        }
    }
    Some(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_function;

    #[test]
    fn path_enumeration_on_diamond() {
        let f = parse_function(
            "fn d {
             entry:
               br c, l, r
             l:
               jmp join
             r:
               jmp join
             join:
               ret
             }",
        )
        .unwrap();
        let mut paths = Vec::new();
        let n = for_each_path(&f, 100, |p| paths.push(p.to_vec())).unwrap();
        assert_eq!(n, 2);
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().all(|p| p.len() == 3));
    }

    #[test]
    fn path_enumeration_detects_cycles() {
        let f = parse_function(
            "fn c {
             entry:
               jmp head
             head:
               br c, head, done
             done:
               ret
             }",
        )
        .unwrap();
        assert_eq!(for_each_path(&f, 100, |_| {}), None);
    }

    #[test]
    fn reachability() {
        let f = parse_function(
            "fn r {
             entry:
               br c, a, b
             a:
               jmp d
             b:
               jmp d
             d:
               ret
             }",
        )
        .unwrap();
        assert!(reachable_from_entry(&f).iter().all(|&r| r));
        assert!(reaches_exit(&f).iter().all(|&r| r));
    }
}
