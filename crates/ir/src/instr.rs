//! Instructions and block terminators.

use crate::expr::{Operand, Rvalue, Var};
use crate::function::BlockId;

/// A straight-line instruction inside a basic block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// An assignment `dst = rv`.
    ///
    /// The right-hand side is evaluated first, then the destination is
    /// written, so `a = a + b` computes `a + b` with the *old* value of `a`
    /// (and kills `a + b` afterwards) — exactly the paper's statement
    /// semantics.
    Assign {
        /// Destination variable.
        dst: Var,
        /// Right-hand side.
        rv: Rvalue,
    },
    /// An observation `obs x`: appends the operand's current value to the
    /// program's observation trace.
    ///
    /// Observations are the IR's only side effect; two programs are
    /// semantically equivalent iff they produce the same trace on every
    /// input. They are opaque to the optimizer (never moved or removed).
    Observe(Operand),
}

impl Instr {
    /// Returns the variable this instruction writes, if any.
    #[inline]
    pub fn def(self) -> Option<Var> {
        match self {
            Instr::Assign { dst, .. } => Some(dst),
            Instr::Observe(_) => None,
        }
    }

    /// Iterates over the variables this instruction reads.
    pub fn uses(self) -> impl Iterator<Item = Var> {
        let vars: Vec<Var> = match self {
            Instr::Assign { rv, .. } => rv.vars().collect(),
            Instr::Observe(op) => op.as_var().into_iter().collect(),
        };
        vars.into_iter()
    }
}

/// The control transfer ending a basic block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch: to `then_to` if `cond != 0`, else to
    /// `else_to`. The two targets may coincide (two parallel CFG edges).
    Branch {
        /// Branch condition (non-zero means taken).
        cond: Operand,
        /// Target when the condition is non-zero.
        then_to: BlockId,
        /// Target when the condition is zero.
        else_to: BlockId,
    },
    /// Function exit. Exactly one block (the exit block) carries this.
    Exit,
}

impl Terminator {
    /// Returns the successor blocks in branch order (then before else).
    pub fn successors(self) -> impl Iterator<Item = BlockId> {
        let (a, b) = match self {
            Terminator::Jump(t) => (Some(t), None),
            Terminator::Branch {
                then_to, else_to, ..
            } => (Some(then_to), Some(else_to)),
            Terminator::Exit => (None, None),
        };
        a.into_iter().chain(b)
    }

    /// Returns the branch condition variable, if this terminator reads one.
    pub fn use_var(self) -> Option<Var> {
        match self {
            Terminator::Branch { cond, .. } => cond.as_var(),
            Terminator::Jump(_) | Terminator::Exit => None,
        }
    }

    /// Rewrites every successor equal to `from` into `to`.
    pub fn retarget(&mut self, from: BlockId, to: BlockId) {
        match self {
            Terminator::Jump(t) => {
                if *t == from {
                    *t = to;
                }
            }
            Terminator::Branch {
                then_to, else_to, ..
            } => {
                if *then_to == from {
                    *then_to = to;
                }
                if *else_to == from {
                    *else_to = to;
                }
            }
            Terminator::Exit => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};

    #[test]
    fn defs_and_uses() {
        let i = Instr::Assign {
            dst: Var(0),
            rv: Rvalue::Expr(Expr::Bin(
                BinOp::Add,
                Operand::Var(Var(1)),
                Operand::Var(Var(2)),
            )),
        };
        assert_eq!(i.def(), Some(Var(0)));
        assert_eq!(i.uses().collect::<Vec<_>>(), vec![Var(1), Var(2)]);

        let o = Instr::Observe(Operand::Var(Var(5)));
        assert_eq!(o.def(), None);
        assert_eq!(o.uses().collect::<Vec<_>>(), vec![Var(5)]);
    }

    #[test]
    fn terminator_successors_and_retarget() {
        let mut t = Terminator::Branch {
            cond: Operand::Var(Var(0)),
            then_to: BlockId(1),
            else_to: BlockId(2),
        };
        assert_eq!(
            t.successors().collect::<Vec<_>>(),
            vec![BlockId(1), BlockId(2)]
        );
        t.retarget(BlockId(2), BlockId(3));
        assert_eq!(
            t.successors().collect::<Vec<_>>(),
            vec![BlockId(1), BlockId(3)]
        );
        assert_eq!(t.use_var(), Some(Var(0)));
        assert_eq!(Terminator::Exit.successors().count(), 0);
    }
}
