//! Instructions and block terminators.

use crate::expr::{Operand, Rvalue, Var};
use crate::function::BlockId;

/// A straight-line instruction inside a basic block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// An assignment `dst = rv`.
    ///
    /// The right-hand side is evaluated first, then the destination is
    /// written, so `a = a + b` computes `a + b` with the *old* value of `a`
    /// (and kills `a + b` afterwards) — exactly the paper's statement
    /// semantics.
    Assign {
        /// Destination variable.
        dst: Var,
        /// Right-hand side.
        rv: Rvalue,
    },
    /// An observation `obs x`: appends the operand's current value to the
    /// program's observation trace.
    ///
    /// Observations and heap writes are the IR's only side effects; two
    /// programs are semantically equivalent iff they produce the same trace
    /// on every input. They are opaque to the optimizer (never moved or
    /// removed).
    Observe(Operand),
    /// A memory write `store addr, val` into the flat addressable heap.
    ///
    /// Under the base- and field-insensitive alias model a store may alias
    /// *every* load, so it kills all `Mem` expressions (see
    /// [`Instr::kills_memory`]). Stores are never moved or removed.
    Store {
        /// Heap address written (the value of the operand is the address).
        addr: Operand,
        /// Value stored.
        val: Operand,
    },
    /// An intrinsic call `dst = call f(a, b)` (or `call f(a, b)` when the
    /// result is discarded).
    ///
    /// The callee is one of a fixed table of binary intrinsics
    /// ([`Callee`]); impure callees write the heap and therefore kill every
    /// `Mem` expression. Calls are never moved or removed by PRE — only
    /// their *result uses* participate via ordinary variables.
    Call {
        /// Destination for the call's result, if captured.
        dst: Option<Var>,
        /// The intrinsic being invoked.
        callee: Callee,
        /// The two argument operands (every intrinsic is binary).
        args: [Operand; 2],
    },
}

impl Instr {
    /// Returns the variable this instruction writes, if any.
    #[inline]
    pub fn def(self) -> Option<Var> {
        match self {
            Instr::Assign { dst, .. } => Some(dst),
            Instr::Call { dst, .. } => dst,
            Instr::Observe(_) | Instr::Store { .. } => None,
        }
    }

    /// Iterates over the variables this instruction reads.
    pub fn uses(self) -> impl Iterator<Item = Var> {
        let vars: Vec<Var> = match self {
            Instr::Assign { rv, .. } => rv.vars().collect(),
            Instr::Observe(op) => op.as_var().into_iter().collect(),
            Instr::Store { addr, val } => addr.as_var().into_iter().chain(val.as_var()).collect(),
            Instr::Call { args, .. } => args.iter().filter_map(|a| a.as_var()).collect(),
        };
        vars.into_iter()
    }

    /// Returns `true` if this instruction may write the heap, i.e. kills
    /// every `Mem` expression under the base- and field-insensitive alias
    /// model: any `store`, and any call to a non-pure intrinsic.
    #[inline]
    pub fn kills_memory(self) -> bool {
        match self {
            Instr::Store { .. } => true,
            Instr::Call { callee, .. } => !callee.is_pure(),
            Instr::Assign { .. } | Instr::Observe(_) => false,
        }
    }
}

/// The fixed table of call targets.
///
/// Keeping the callee set closed (and every intrinsic binary) keeps
/// [`Instr`] `Copy` and the interpreter total; the distinction that matters
/// to the optimizer is only [`Callee::is_pure`] — impure intrinsics write
/// the heap and kill every `Mem` expression.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Callee {
    /// `min(a, b)` — pure.
    Min,
    /// `max(a, b)` — pure.
    Max,
    /// `poke(addr, val)` — writes `val` to `heap[addr]`, returns the value
    /// previously stored there. Impure.
    Poke,
    /// `bump(addr, delta)` — adds `delta` to `heap[addr]` (wrapping),
    /// returns the new value. Impure.
    Bump,
}

impl Callee {
    /// All intrinsics, in display order.
    pub const ALL: [Callee; 4] = [Callee::Min, Callee::Max, Callee::Poke, Callee::Bump];

    /// The intrinsic's textual name (as used by the parser and printer).
    pub fn name(self) -> &'static str {
        match self {
            Callee::Min => "min",
            Callee::Max => "max",
            Callee::Poke => "poke",
            Callee::Bump => "bump",
        }
    }

    /// Looks an intrinsic up by its textual name.
    pub fn by_name(name: &str) -> Option<Callee> {
        Callee::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Returns `true` if the intrinsic never touches the heap.
    pub fn is_pure(self) -> bool {
        matches!(self, Callee::Min | Callee::Max)
    }
}

impl std::fmt::Display for Callee {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The control transfer ending a basic block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch: to `then_to` if `cond != 0`, else to
    /// `else_to`. The two targets may coincide (two parallel CFG edges).
    Branch {
        /// Branch condition (non-zero means taken).
        cond: Operand,
        /// Target when the condition is non-zero.
        then_to: BlockId,
        /// Target when the condition is zero.
        else_to: BlockId,
    },
    /// Function exit. Exactly one block (the exit block) carries this.
    Exit,
}

impl Terminator {
    /// Returns the successor blocks in branch order (then before else).
    pub fn successors(self) -> impl Iterator<Item = BlockId> {
        let (a, b) = match self {
            Terminator::Jump(t) => (Some(t), None),
            Terminator::Branch {
                then_to, else_to, ..
            } => (Some(then_to), Some(else_to)),
            Terminator::Exit => (None, None),
        };
        a.into_iter().chain(b)
    }

    /// Returns the branch condition variable, if this terminator reads one.
    pub fn use_var(self) -> Option<Var> {
        match self {
            Terminator::Branch { cond, .. } => cond.as_var(),
            Terminator::Jump(_) | Terminator::Exit => None,
        }
    }

    /// Rewrites every successor equal to `from` into `to`.
    pub fn retarget(&mut self, from: BlockId, to: BlockId) {
        match self {
            Terminator::Jump(t) => {
                if *t == from {
                    *t = to;
                }
            }
            Terminator::Branch {
                then_to, else_to, ..
            } => {
                if *then_to == from {
                    *then_to = to;
                }
                if *else_to == from {
                    *else_to = to;
                }
            }
            Terminator::Exit => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};

    #[test]
    fn defs_and_uses() {
        let i = Instr::Assign {
            dst: Var(0),
            rv: Rvalue::Expr(Expr::Bin(
                BinOp::Add,
                Operand::Var(Var(1)),
                Operand::Var(Var(2)),
            )),
        };
        assert_eq!(i.def(), Some(Var(0)));
        assert_eq!(i.uses().collect::<Vec<_>>(), vec![Var(1), Var(2)]);

        let o = Instr::Observe(Operand::Var(Var(5)));
        assert_eq!(o.def(), None);
        assert_eq!(o.uses().collect::<Vec<_>>(), vec![Var(5)]);
    }

    #[test]
    fn memory_defs_uses_and_kills() {
        let st = Instr::Store {
            addr: Operand::Var(Var(1)),
            val: Operand::Var(Var(2)),
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses().collect::<Vec<_>>(), vec![Var(1), Var(2)]);
        assert!(st.kills_memory());

        let pure = Instr::Call {
            dst: Some(Var(0)),
            callee: Callee::Min,
            args: [Operand::Var(Var(1)), Operand::Const(3)],
        };
        assert_eq!(pure.def(), Some(Var(0)));
        assert_eq!(pure.uses().collect::<Vec<_>>(), vec![Var(1)]);
        assert!(!pure.kills_memory());

        let impure = Instr::Call {
            dst: None,
            callee: Callee::Poke,
            args: [Operand::Var(Var(1)), Operand::Var(Var(2))],
        };
        assert_eq!(impure.def(), None);
        assert!(impure.kills_memory());

        let load = Instr::Assign {
            dst: Var(0),
            rv: Rvalue::Expr(Expr::Mem(Operand::Var(Var(1)))),
        };
        assert!(!load.kills_memory());
        assert_eq!(load.uses().collect::<Vec<_>>(), vec![Var(1)]);
    }

    #[test]
    fn callee_table_round_trips() {
        for c in Callee::ALL {
            assert_eq!(Callee::by_name(c.name()), Some(c));
        }
        assert_eq!(Callee::by_name("sqrt"), None);
        assert!(Callee::Min.is_pure());
        assert!(!Callee::Bump.is_pure());
    }

    #[test]
    fn terminator_successors_and_retarget() {
        let mut t = Terminator::Branch {
            cond: Operand::Var(Var(0)),
            then_to: BlockId(1),
            else_to: BlockId(2),
        };
        assert_eq!(
            t.successors().collect::<Vec<_>>(),
            vec![BlockId(1), BlockId(2)]
        );
        t.retarget(BlockId(2), BlockId(3));
        assert_eq!(
            t.successors().collect::<Vec<_>>(),
            vec![BlockId(1), BlockId(3)]
        );
        assert_eq!(t.use_var(), Some(Var(0)));
        assert_eq!(Terminator::Exit.successors().count(), 0);
    }
}
