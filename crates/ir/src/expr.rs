//! Expressions, operands and variables.
//!
//! Following the paper, every candidate expression has a *single operator*:
//! either a unary operator applied to one operand or a binary operator
//! applied to two. Operands are variables or integer constants. Larger
//! expression trees are represented in the IR as sequences of single-operator
//! assignments to temporaries (exactly the shape the paper assumes).

use std::fmt;

/// An interned variable.
///
/// Variables are function-local and interned in the function's
/// [`SymbolTable`](crate::SymbolTable); the `u32` payload is the dense
/// symbol index. Use [`Function::var_name`](crate::Function::var_name) or
/// the symbol table to recover the textual name.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Returns the dense symbol-table index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// An operand: a variable or an integer constant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Operand {
    /// A variable reference.
    Var(Var),
    /// An integer constant.
    Const(i64),
}

impl Operand {
    /// Returns the variable if this operand is one.
    #[inline]
    pub fn as_var(self) -> Option<Var> {
        match self {
            Operand::Var(v) => Some(v),
            Operand::Const(_) => None,
        }
    }

    /// Returns `true` if this operand mentions `v`.
    #[inline]
    pub fn mentions(self, v: Var) -> bool {
        self.as_var() == Some(v)
    }
}

impl From<Var> for Operand {
    fn from(v: Var) -> Self {
        Operand::Var(v)
    }
}

impl From<i64> for Operand {
    fn from(c: i64) -> Self {
        Operand::Const(c)
    }
}

/// A binary operator.
///
/// The concrete operator set is irrelevant to the code-motion theory (any
/// pure operator works); this set is rich enough for realistic workloads and
/// for the random program generators.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition `+`.
    Add,
    /// Wrapping subtraction `-`.
    Sub,
    /// Wrapping multiplication `*`.
    Mul,
    /// Division `/` (total: division by zero yields `0`).
    Div,
    /// Remainder `%` (total: remainder by zero yields `0`).
    Rem,
    /// Bitwise and `&`.
    And,
    /// Bitwise or `|`.
    Or,
    /// Bitwise xor `^`.
    Xor,
    /// Left shift `<<` (shift amount taken modulo 64).
    Shl,
    /// Arithmetic right shift `>>` (shift amount taken modulo 64).
    Shr,
    /// Equality `==` (yields `0` or `1`).
    Eq,
    /// Inequality `!=` (yields `0` or `1`).
    Ne,
    /// Less-than `<` (yields `0` or `1`).
    Lt,
    /// Less-or-equal `<=` (yields `0` or `1`).
    Le,
    /// Greater-than `>` (yields `0` or `1`).
    Gt,
    /// Greater-or-equal `>=` (yields `0` or `1`).
    Ge,
}

impl BinOp {
    /// All binary operators, in display order.
    pub const ALL: [BinOp; 16] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ];

    /// The operator's textual spelling (as used by the parser and printer).
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        }
    }

    /// Returns `true` if the operator would fault on some inputs under
    /// conventional (non-total) machine semantics.
    ///
    /// The interpreter's semantics are total — division and remainder by
    /// zero yield `0` — so nothing in this IR can actually trap. But the
    /// speculative placer models a real backend, where hoisting a `/` or
    /// `%` above the guard that excludes a zero divisor introduces a fault
    /// on a path that never computed it. These two operators are therefore
    /// excluded from speculation (see [`Expr::side_effect_free`]); every
    /// other operator wraps or saturates and is speculable.
    pub fn may_fault(self) -> bool {
        matches!(self, BinOp::Div | BinOp::Rem)
    }

    /// Evaluates the operator on concrete values with total semantics.
    ///
    /// Division and remainder by zero yield `0`; shifts use the low six bits
    /// of the shift amount; arithmetic wraps. Making every operator total
    /// keeps hoisted computations trap-free, matching the paper's model of
    /// pure expressions.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b as u32 & 63),
            BinOp::Shr => a.wrapping_shr(b as u32 & 63),
            BinOp::Eq => i64::from(a == b),
            BinOp::Ne => i64::from(a != b),
            BinOp::Lt => i64::from(a < b),
            BinOp::Le => i64::from(a <= b),
            BinOp::Gt => i64::from(a > b),
            BinOp::Ge => i64::from(a >= b),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A unary operator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum UnOp {
    /// Arithmetic negation `-`.
    Neg,
    /// Bitwise complement `~`.
    Not,
}

impl UnOp {
    /// The operator's textual spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "~",
        }
    }

    /// Evaluates the operator on a concrete value (wrapping).
    pub fn eval(self, a: i64) -> i64 {
        match self {
            UnOp::Neg => a.wrapping_neg(),
            UnOp::Not => !a,
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A single-operator expression — the unit of partial redundancy
/// elimination.
///
/// Two occurrences of the *same* `Expr` value (structural equality) are
/// occurrences of the same expression in the sense of the paper, e.g. every
/// `a + b` in a function denotes the same candidate. `Expr` is small and
/// `Copy`; the analyses build a dense *universe* of the distinct expressions
/// occurring in a function.
///
/// ```
/// use lcm_ir::{BinOp, Expr, Operand, Var};
///
/// let a = Operand::Var(Var(0));
/// let b = Operand::Var(Var(1));
/// let e = Expr::Bin(BinOp::Add, a, b);
/// assert!(e.mentions(Var(0)));
/// assert_eq!(e, Expr::Bin(BinOp::Add, a, b));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Expr {
    /// A unary application `op a`.
    Un(UnOp, Operand),
    /// A binary application `a op b`.
    Bin(BinOp, Operand, Operand),
    /// A memory read `load a` from the flat addressable heap.
    ///
    /// Loads join the expression universe so PRE applies to them, but
    /// transparency must additionally account for memory kills: with the
    /// base- and field-insensitive alias model, *every* `store` and every
    /// non-pure `call` may alias *every* load, so any such instruction
    /// makes the containing block non-transparent for all `Mem`
    /// expressions (see `lcm-core`'s `ExprUniverse::mem_mask`).
    Mem(Operand),
}

impl Expr {
    /// Returns `true` if `v` is an operand of this expression.
    ///
    /// An instruction assigning to any mentioned variable *kills* the
    /// expression (makes the containing block non-transparent).
    pub fn mentions(self, v: Var) -> bool {
        match self {
            Expr::Un(_, a) | Expr::Mem(a) => a.mentions(v),
            Expr::Bin(_, a, b) => a.mentions(v) || b.mentions(v),
        }
    }

    /// Iterates over the variable operands of this expression.
    pub fn vars(self) -> impl Iterator<Item = Var> {
        let (a, b) = match self {
            Expr::Un(_, a) | Expr::Mem(a) => (a.as_var(), None),
            Expr::Bin(_, a, b) => (a.as_var(), b.as_var()),
        };
        a.into_iter().chain(b)
    }

    /// Returns `true` if evaluating this expression can be moved to a path
    /// that never executed it originally — the safety class speculative PRE
    /// is restricted to.
    ///
    /// Unary operators and faultless binary operators qualify; `/` and `%`
    /// do not (see [`BinOp::may_fault`]), and neither do loads — on a real
    /// target a speculated load can fault on an address the original
    /// program never dereferenced.
    pub fn side_effect_free(self) -> bool {
        match self {
            Expr::Un(..) => true,
            Expr::Bin(op, ..) => !op.may_fault(),
            Expr::Mem(_) => false,
        }
    }

    /// Iterates over the operands of this expression.
    pub fn operands(self) -> impl Iterator<Item = Operand> {
        let (a, b) = match self {
            Expr::Un(_, a) | Expr::Mem(a) => (a, None),
            Expr::Bin(_, a, b) => (a, Some(b)),
        };
        std::iter::once(a).chain(b)
    }
}

/// The right-hand side of an assignment.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Rvalue {
    /// A plain copy or constant load: `v = x` / `v = 7`.
    ///
    /// Copies are not PRE candidates (there is nothing to recompute).
    Operand(Operand),
    /// A single-operator expression: the PRE candidates.
    Expr(Expr),
}

impl Rvalue {
    /// Returns the candidate expression, if this right-hand side is one.
    #[inline]
    pub fn as_expr(self) -> Option<Expr> {
        match self {
            Rvalue::Expr(e) => Some(e),
            Rvalue::Operand(_) => None,
        }
    }

    /// Iterates over the variables read by this right-hand side.
    pub fn vars(self) -> impl Iterator<Item = Var> {
        let (a, b) = match self {
            Rvalue::Operand(a) => (a.as_var(), None),
            Rvalue::Expr(Expr::Un(_, a)) | Rvalue::Expr(Expr::Mem(a)) => (a.as_var(), None),
            Rvalue::Expr(Expr::Bin(_, a, b)) => (a.as_var(), b.as_var()),
        };
        a.into_iter().chain(b)
    }
}

impl From<Expr> for Rvalue {
    fn from(e: Expr) -> Self {
        Rvalue::Expr(e)
    }
}

impl From<Operand> for Rvalue {
    fn from(o: Operand) -> Self {
        Rvalue::Operand(o)
    }
}

impl From<Var> for Rvalue {
    fn from(v: Var) -> Self {
        Rvalue::Operand(Operand::Var(v))
    }
}

impl From<i64> for Rvalue {
    fn from(c: i64) -> Self {
        Rvalue::Operand(Operand::Const(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_equality_is_structural() {
        let a = Operand::Var(Var(0));
        let b = Operand::Var(Var(1));
        assert_eq!(Expr::Bin(BinOp::Add, a, b), Expr::Bin(BinOp::Add, a, b));
        assert_ne!(Expr::Bin(BinOp::Add, a, b), Expr::Bin(BinOp::Add, b, a));
        assert_ne!(Expr::Bin(BinOp::Add, a, b), Expr::Bin(BinOp::Sub, a, b));
    }

    #[test]
    fn mentions_and_vars() {
        let e = Expr::Bin(BinOp::Mul, Operand::Var(Var(3)), Operand::Const(4));
        assert!(e.mentions(Var(3)));
        assert!(!e.mentions(Var(4)));
        assert_eq!(e.vars().collect::<Vec<_>>(), vec![Var(3)]);
        assert_eq!(e.operands().count(), 2);
    }

    #[test]
    fn total_eval_semantics() {
        assert_eq!(BinOp::Div.eval(7, 0), 0);
        assert_eq!(BinOp::Rem.eval(7, 0), 0);
        assert_eq!(BinOp::Div.eval(7, 2), 3);
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(BinOp::Shl.eval(1, 64), 1); // shift count mod 64
        assert_eq!(BinOp::Lt.eval(1, 2), 1);
        assert_eq!(UnOp::Neg.eval(i64::MIN), i64::MIN);
        assert_eq!(UnOp::Not.eval(0), -1);
    }

    #[test]
    fn mem_expr_shape() {
        let e = Expr::Mem(Operand::Var(Var(2)));
        assert!(e.mentions(Var(2)));
        assert!(!e.mentions(Var(0)));
        assert!(!e.side_effect_free());
        assert_eq!(e.vars().collect::<Vec<_>>(), vec![Var(2)]);
        assert_eq!(e.operands().count(), 1);
        let rv: Rvalue = e.into();
        assert_eq!(rv.vars().collect::<Vec<_>>(), vec![Var(2)]);
        // Loads from constant addresses mention no variable at all.
        assert_eq!(Expr::Mem(Operand::Const(8)).vars().count(), 0);
    }

    #[test]
    fn operand_conversions() {
        let v: Operand = Var(1).into();
        assert_eq!(v.as_var(), Some(Var(1)));
        let c: Operand = 42i64.into();
        assert_eq!(c.as_var(), None);
        let rv: Rvalue = Expr::Un(UnOp::Neg, c).into();
        assert!(rv.as_expr().is_some());
    }
}
