//! CFG intermediate representation for the `lcm` workspace.
//!
//! The Lazy Code Motion paper (Knoop, Rüthing & Steffen, PLDI 1992) operates
//! on flow graphs whose nodes hold assignment statements `v := e` over
//! *single-operator* expressions. This crate provides that substrate:
//!
//! * [`Expr`], [`Operand`], [`Rvalue`] — single-operator expressions,
//! * [`Instr`], [`Terminator`] — instructions and block terminators,
//! * [`Function`] — a control-flow graph of basic blocks with a unique
//!   entry and a unique exit,
//! * [`FunctionBuilder`] — an ergonomic way to construct functions,
//! * [`Module`] — an ordered, uniquely-named collection of functions, the
//!   input unit of the batch driver,
//! * [`Profile`] — optional edge-frequency weights for a function, parsed
//!   from a `profile` section and checked for flow conservation,
//! * a textual format ([`parse_function`], [`parse_module`], `Display`),
//! * a leader-based lifter ([`lift_module`]) from flat three-address
//!   listings (`goto INDEX` control) into module IR,
//! * graph algorithms ([`graph`]): orderings, dominators, natural loops,
//!   critical edges and critical-edge splitting,
//! * CFG simplification ([`simplify_cfg`]): merging chains and removing
//!   forwarding blocks left behind by edge splitting,
//! * a structural [`verify`]-er and [`dot`] (Graphviz) export.
//!
//! # Example
//!
//! ```
//! use lcm_ir::parse_function;
//!
//! let f = parse_function(
//!     "fn diamond {
//!      entry:
//!        br c, left, right
//!      left:
//!        x = a + b
//!        jmp join
//!      right:
//!        jmp join
//!      join:
//!        y = a + b
//!        obs y
//!        ret
//!      }",
//! )?;
//! assert_eq!(f.num_blocks(), 4);
//! lcm_ir::verify(&f)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod builder;
mod expr;
mod function;
mod instr;
mod lift;
mod module;
mod parse;
mod print;
mod profile;
mod simplify;
mod verify;

pub mod dot;
pub mod graph;

pub use builder::FunctionBuilder;
pub use expr::{BinOp, Expr, Operand, Rvalue, UnOp, Var};
pub use function::{BlockData, BlockId, Edge, EdgeId, EdgeList, Function, SymbolTable};
pub use instr::{Callee, Instr, Terminator};
pub use lift::{lift_module, LiftError, LiftStats, LiftedModule};
pub use module::Module;
pub use parse::{parse_function, parse_module, ParseError};
pub use profile::{Profile, ProfileEntry, ProfileError};
pub use simplify::{simplify_cfg, SimplifyStats};
pub use verify::{verify, VerifyError};

/// Defines a dense `u32` entity index newtype (block ids, edge ids, …).
///
/// The generated type is `Copy`, ordered, hashable, and prints as
/// `"{prefix}{index}"`. Entities index into `Vec`s; they are never
/// invalidated by the structures in this crate except where documented.
#[macro_export]
macro_rules! entity_id {
    ($(#[$meta:meta])* $vis:vis struct $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        $vis struct $name(pub u32);

        impl $name {
            /// Returns the index as a `usize`, for indexing into dense tables.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a dense index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("entity index overflow"))
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                ::std::fmt::Display::fmt(self, f)
            }
        }
    };
}
