//! A parser for the textual IR format.
//!
//! The grammar (line-oriented; `#` starts a comment):
//!
//! ```text
//! module    := (function | profile)+
//! function  := "fn" NAME "{" block+ "}"
//! profile   := "profile" NAME "{" pentry* "}"
//! pentry    := LABEL "->" LABEL ":" INT
//! block     := LABEL ":" instr* terminator
//! instr     := "obs" operand
//!            | "store" operand "," operand
//!            | call
//!            | IDENT "=" call
//!            | IDENT "=" rhs
//! call      := "call" NAME "(" operand "," operand ")"
//! rhs       := operand
//!            | unop operand
//!            | operand binop operand
//!            | "load" operand
//! terminator:= "jmp" LABEL
//!            | "br" operand "," LABEL "," LABEL
//!            | "ret"
//! operand   := IDENT | INT
//! unop      := "-" | "~"
//! binop     := "+" "-" "*" "/" "%" "&" "|" "^" "<<" ">>"
//!              "==" "!=" "<" "<=" ">" ">="
//! ```
//!
//! The first block is the entry; the unique block terminated by `ret` is the
//! exit. Labels and variable names are identifiers (letters, digits, `_`,
//! `.`, not starting with a digit). The instruction keywords (`obs`, `jmp`,
//! `br`, `ret`, `store`, `call`, `load`) are effectively reserved: a line
//! starting with one of them is parsed as that instruction. The callee NAME
//! of a `call` must be one of the fixed intrinsics
//! ([`Callee`](crate::Callee)).
//!
//! A `profile` section attaches edge-frequency weights to a function that
//! appeared *earlier* in the module (see [`Profile`](crate::Profile)). It
//! must list every CFG edge of that function exactly once, and the weights
//! must conserve flow — at each block other than entry and exit, incoming
//! weights sum to outgoing weights — or parsing fails with a spanned error.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::expr::{BinOp, Expr, Operand, Rvalue, UnOp};
use crate::function::{BlockData, BlockId, Function, SymbolTable};
use crate::instr::{Callee, Instr, Terminator};

/// An error produced by [`parse_function`], with a 1-based line and column.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line on which the error occurred.
    pub line: usize,
    /// 1-based column of the offending token; whole-line structural
    /// problems (e.g. a missing terminator) anchor at the line's first
    /// token, or column 1 when no token is at hand.
    pub col: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error on line {}, column {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for ParseError {}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    Sym(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(i) => write!(f, "`{i}`"),
            Tok::Sym(s) => write!(f, "`{s}`"),
        }
    }
}

// Longest-match-first within a shared prefix: `->` before `-`, `<<`/`<=`
// before `<`, and so on.
const SYMBOLS: [&str; 25] = [
    "<<", ">>", "==", "!=", "<=", ">=", "->", "+", "-", "*", "/", "%", "&", "|", "^", "<", ">",
    "=", ",", ":", "{", "}", "~", "(", ")",
];

fn tokenize(line: &str, lineno: usize) -> Result<(Vec<Tok>, Vec<usize>), ParseError> {
    let mut toks = Vec::new();
    let mut cols = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '#' {
            break;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() {
                let c = bytes[i] as char;
                if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                    i += 1;
                } else {
                    break;
                }
            }
            toks.push(Tok::Ident(line[start..i].to_string()));
            cols.push(start + 1);
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let text = &line[start..i];
            let value = text.parse::<i64>().map_err(|_| ParseError {
                line: lineno,
                col: start + 1,
                message: format!("integer literal `{text}` out of range"),
            })?;
            toks.push(Tok::Int(value));
            cols.push(start + 1);
            continue;
        }
        for sym in SYMBOLS {
            if line[i..].starts_with(sym) {
                toks.push(Tok::Sym(sym));
                cols.push(i + 1);
                i += sym.len();
                continue 'outer;
            }
        }
        return Err(ParseError {
            line: lineno,
            col: i + 1,
            message: format!("unexpected character `{c}`"),
        });
    }
    Ok((toks, cols))
}

/// The source position of one tokenized line: its 1-based line number plus
/// the 1-based starting column of each token, so errors can point at the
/// offending token rather than just the line.
#[derive(Clone, Copy)]
struct Span<'a> {
    line: usize,
    cols: &'a [usize],
}

impl Span<'_> {
    /// The column of token `at`, or just past the last token for
    /// end-of-line errors.
    fn col(&self, at: usize) -> usize {
        self.cols
            .get(at)
            .copied()
            .unwrap_or_else(|| self.cols.last().map_or(1, |c| c + 1))
    }

    fn err(&self, at: usize, message: String) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col(at),
            message,
        }
    }
}

struct Ctx {
    symbols: SymbolTable,
    labels: HashMap<String, BlockId>,
}

impl Ctx {
    fn operand(
        &mut self,
        toks: &[Tok],
        at: &mut usize,
        sp: Span<'_>,
    ) -> Result<Operand, ParseError> {
        match toks.get(*at) {
            Some(Tok::Ident(name)) => {
                *at += 1;
                Ok(Operand::Var(self.symbols.intern(name)))
            }
            Some(Tok::Int(i)) => {
                *at += 1;
                Ok(Operand::Const(*i))
            }
            Some(Tok::Sym("-")) => match toks.get(*at + 1) {
                Some(Tok::Int(i)) => {
                    *at += 2;
                    Ok(Operand::Const(i.wrapping_neg()))
                }
                _ => Err(sp.err(*at, "expected integer after unary `-`".into())),
            },
            other => Err(sp.err(
                *at,
                format!(
                    "expected operand, found {}",
                    other.map_or("end of line".to_string(), |t| t.to_string())
                ),
            )),
        }
    }

    fn label(&self, toks: &[Tok], at: &mut usize, sp: Span<'_>) -> Result<BlockId, ParseError> {
        match toks.get(*at) {
            Some(Tok::Ident(name)) => {
                let found = self
                    .labels
                    .get(name)
                    .copied()
                    .ok_or_else(|| sp.err(*at, format!("unknown label `{name}`")));
                *at += 1;
                found
            }
            other => Err(sp.err(
                *at,
                format!(
                    "expected label, found {}",
                    other.map_or("end of line".to_string(), |t| t.to_string())
                ),
            )),
        }
    }
}

fn binop_from_sym(sym: &str) -> Option<BinOp> {
    BinOp::ALL.into_iter().find(|o| o.symbol() == sym)
}

/// One non-empty source line, tokenized, carrying its absolute 1-based line
/// number so multi-function inputs keep file-relative error positions.
struct Line {
    no: usize,
    toks: Vec<Tok>,
    cols: Vec<usize>,
}

/// Tokenizes `text` into its non-empty lines.
fn tokenize_text(text: &str) -> Result<Vec<Line>, ParseError> {
    let mut lines = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let (toks, cols) = tokenize(raw, idx + 1)?;
        if !toks.is_empty() {
            lines.push(Line {
                no: idx + 1,
                toks,
                cols,
            });
        }
    }
    Ok(lines)
}

fn err_at_col1(line: usize, message: String) -> ParseError {
    ParseError {
        line,
        col: 1,
        message,
    }
}

/// Parses the textual IR format into a [`Function`].
///
/// See the [module documentation](self) for the grammar. The parser does not
/// run the [verifier](crate::verify); call it separately if the input is
/// untrusted. The input must contain exactly one function; use
/// [`parse_module`] for multi-function sources.
///
/// # Errors
///
/// Returns a [`ParseError`] with a line and column on malformed input,
/// unknown labels, a missing/duplicate `ret` block, or instructions after a
/// terminator.
pub fn parse_function(text: &str) -> Result<Function, ParseError> {
    let lines = tokenize_text(text)?;
    if lines.is_empty() {
        return Err(err_at_col1(1, "empty input".into()));
    }
    let (f, rest) = parse_one(&lines)?;
    if let Some(extra) = rest.first() {
        return Err(ParseError {
            line: extra.no,
            col: extra.cols.first().copied().unwrap_or(1),
            message: "content after closing `}`".into(),
        });
    }
    Ok(f)
}

/// Parses a module: one or more functions back to back, optionally followed
/// (or interleaved) with `profile` sections for functions already parsed.
///
/// Errors carry positions relative to the whole input, and function names
/// must be unique within the module. Profile sections are checked
/// structurally against their function — every edge present exactly once,
/// flow conserved at internal blocks — so a module that parses never carries
/// an inconsistent profile. Like [`parse_function`], the verifier is not
/// run; the batch driver verifies each function before optimizing it.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input, an empty module, a duplicate
/// function name, or an inconsistent profile section.
pub fn parse_module(text: &str) -> Result<crate::Module, ParseError> {
    let lines = tokenize_text(text)?;
    if lines.is_empty() {
        return Err(err_at_col1(1, "empty input".into()));
    }
    let mut module = crate::Module::default();
    let mut rest = lines.as_slice();
    while let Some(header) = rest.first() {
        let header_pos = (header.no, header.cols.first().copied().unwrap_or(1));
        if matches!(header.toks.as_slice(),
            [Tok::Ident(kw), Tok::Ident(_), Tok::Sym("{")] if kw == "profile")
        {
            rest = parse_profile_section(rest, &mut module)?;
            continue;
        }
        let (f, remaining) = parse_one(rest)?;
        if let Err(f) = module.push(f) {
            return Err(ParseError {
                line: header_pos.0,
                col: header_pos.1,
                message: format!("duplicate function `{}` in module", f.name),
            });
        }
        rest = remaining;
    }
    Ok(module)
}

/// Parses one `profile NAME { ... }` section from the front of `lines`,
/// validates it against the named (already-parsed) function, and attaches it
/// to `module`. Returns the lines after the closing `}`.
fn parse_profile_section<'a>(
    lines: &'a [Line],
    module: &mut crate::Module,
) -> Result<&'a [Line], ParseError> {
    let header = &lines[0];
    let header_err = |message: String| ParseError {
        line: header.no,
        col: header.cols.first().copied().unwrap_or(1),
        message,
    };
    let name = match header.toks.as_slice() {
        [Tok::Ident(kw), Tok::Ident(name), Tok::Sym("{")] if kw == "profile" => name.clone(),
        _ => unreachable!("caller matched the profile header"),
    };
    let close = lines[1..]
        .iter()
        .position(|l| matches!(l.toks.as_slice(), [Tok::Sym("}")]))
        .map(|i| i + 1)
        .ok_or_else(|| {
            err_at_col1(
                lines.last().map_or(1, |l| l.no),
                "missing closing `}`".into(),
            )
        })?;

    let mut entries = Vec::new();
    // Per-entry source anchors: (line, from col, to col).
    let mut anchors: Vec<(usize, usize, usize)> = Vec::new();
    for line in &lines[1..close] {
        let sp = Span {
            line: line.no,
            cols: &line.cols,
        };
        match line.toks.as_slice() {
            [Tok::Ident(from), Tok::Sym("->"), Tok::Ident(to), Tok::Sym(":"), Tok::Int(w)] => {
                // The tokenizer has no signs, so `w` is already >= 0.
                entries.push(crate::ProfileEntry {
                    from: from.clone(),
                    to: to.clone(),
                    weight: *w as u64,
                });
                anchors.push((line.no, sp.col(0), sp.col(2)));
            }
            [_, _, _, _, Tok::Sym("-"), ..] => {
                return Err(sp.err(4, "profile weight must be a non-negative integer".into()));
            }
            _ => {
                return Err(sp.err(0, "expected `FROM -> TO : WEIGHT` profile entry".into()));
            }
        }
    }

    let profile = crate::Profile {
        function: name.clone(),
        entries,
    };
    let Some(f) = module.get(&name) else {
        return Err(header_err(format!(
            "profile for unknown function `{name}` (the function must precede its profile)"
        )));
    };
    if let Err(e) = profile.resolve(f) {
        use crate::ProfileError as PE;
        let message = e.to_string();
        return Err(match e {
            PE::UnknownBlock { label, entry } => {
                let (line, from_col, to_col) = anchors[entry];
                let col = if profile.entries[entry].from == label {
                    from_col
                } else {
                    to_col
                };
                ParseError { line, col, message }
            }
            PE::NoSuchEdge { entry, .. } | PE::NotConserving { entry, .. } => {
                let (line, from_col, _) = anchors[entry];
                ParseError {
                    line,
                    col: from_col,
                    message,
                }
            }
            PE::MissingEdge { .. } => header_err(message),
        });
    }
    if module.push_profile(profile).is_err() {
        return Err(header_err(format!(
            "duplicate profile for function `{name}`"
        )));
    }
    Ok(&lines[close + 1..])
}

/// Parses one function from the front of `lines`; returns it together with
/// the lines that follow its closing `}`.
fn parse_one(lines: &[Line]) -> Result<(Function, &[Line]), ParseError> {
    let header = &lines[0];
    let first_line = header.no;
    let name = match header.toks.as_slice() {
        [Tok::Ident(kw), Tok::Ident(name), Tok::Sym("{")] if kw == "fn" => name.clone(),
        _ => {
            return Err(err_at_col1(
                first_line,
                "expected `fn NAME {` header".into(),
            ))
        }
    };

    // The body runs to the first `}` line; everything after it belongs to
    // the next function (if any).
    let close = lines[1..]
        .iter()
        .position(|l| matches!(l.toks.as_slice(), [Tok::Sym("}")]))
        .map(|i| i + 1)
        .ok_or_else(|| {
            err_at_col1(
                lines.last().map_or(1, |l| l.no),
                "missing closing `}`".into(),
            )
        })?;
    let body = &lines[1..close];

    // Pass 1: collect block labels in order.
    let mut ctx = Ctx {
        symbols: SymbolTable::new(),
        labels: HashMap::new(),
    };
    let mut blocks: Vec<BlockData> = Vec::new();
    for line in body {
        if let [Tok::Ident(label), Tok::Sym(":")] = line.toks.as_slice() {
            if ctx.labels.contains_key(label) {
                return Err(ParseError {
                    line: line.no,
                    col: line.cols.first().copied().unwrap_or(1),
                    message: format!("duplicate label `{label}`"),
                });
            }
            ctx.labels
                .insert(label.clone(), BlockId::from_index(blocks.len()));
            blocks.push(BlockData::new(label.clone()));
        }
    }
    if blocks.is_empty() {
        return Err(err_at_col1(first_line, "function has no blocks".into()));
    }

    // Pass 2: fill in instructions and terminators.
    let mut current: Option<usize> = None;
    let mut terminated = vec![false; blocks.len()];
    let mut exit: Option<BlockId> = None;
    for line in body {
        let lineno = line.no;
        let toks = &line.toks;
        let sp = Span {
            line: lineno,
            cols: &line.cols,
        };
        if let [Tok::Ident(label), Tok::Sym(":")] = toks.as_slice() {
            if let Some(cur) = current {
                if !terminated[cur] {
                    return Err(sp.err(
                        0,
                        format!("block `{}` lacks a terminator", blocks[cur].name),
                    ));
                }
            }
            current = Some(ctx.labels[label].index());
            continue;
        }
        let cur = current.ok_or_else(|| sp.err(0, "instruction before first label".into()))?;
        if terminated[cur] {
            return Err(sp.err(
                0,
                format!(
                    "instruction after terminator in block `{}`",
                    blocks[cur].name
                ),
            ));
        }
        let mut at = 0;
        match toks.first() {
            Some(Tok::Ident(kw)) if kw == "obs" => {
                at += 1;
                let op = ctx.operand(toks, &mut at, sp)?;
                expect_end(toks, at, sp)?;
                blocks[cur].instrs.push(Instr::Observe(op));
            }
            Some(Tok::Ident(kw)) if kw == "store" => {
                at += 1;
                let addr = ctx.operand(toks, &mut at, sp)?;
                expect_sym(toks, &mut at, ",", sp)?;
                let val = ctx.operand(toks, &mut at, sp)?;
                expect_end(toks, at, sp)?;
                blocks[cur].instrs.push(Instr::Store { addr, val });
            }
            Some(Tok::Ident(kw)) if kw == "call" => {
                let (callee, args) = parse_call(&mut ctx, toks, &mut at, sp)?;
                expect_end(toks, at, sp)?;
                blocks[cur].instrs.push(Instr::Call {
                    dst: None,
                    callee,
                    args,
                });
            }
            Some(Tok::Ident(kw)) if kw == "jmp" => {
                at += 1;
                let target = ctx.label(toks, &mut at, sp)?;
                expect_end(toks, at, sp)?;
                blocks[cur].term = Terminator::Jump(target);
                terminated[cur] = true;
            }
            Some(Tok::Ident(kw)) if kw == "br" => {
                at += 1;
                let cond = ctx.operand(toks, &mut at, sp)?;
                expect_sym(toks, &mut at, ",", sp)?;
                let then_to = ctx.label(toks, &mut at, sp)?;
                expect_sym(toks, &mut at, ",", sp)?;
                let else_to = ctx.label(toks, &mut at, sp)?;
                expect_end(toks, at, sp)?;
                blocks[cur].term = Terminator::Branch {
                    cond,
                    then_to,
                    else_to,
                };
                terminated[cur] = true;
            }
            Some(Tok::Ident(kw)) if kw == "ret" && toks.len() == 1 => {
                blocks[cur].term = Terminator::Exit;
                terminated[cur] = true;
                let this = BlockId::from_index(cur);
                if let Some(prev) = exit {
                    return Err(sp.err(
                        0,
                        format!(
                            "multiple `ret` blocks: `{}` and `{}`",
                            blocks[prev.index()].name,
                            blocks[this.index()].name
                        ),
                    ));
                }
                exit = Some(this);
            }
            Some(Tok::Ident(dst)) if matches!(toks.get(1), Some(Tok::Sym("="))) => {
                let dst = ctx.symbols.intern(dst);
                at = 2;
                if matches!(toks.get(at), Some(Tok::Ident(kw)) if kw == "call") {
                    let (callee, args) = parse_call(&mut ctx, toks, &mut at, sp)?;
                    expect_end(toks, at, sp)?;
                    blocks[cur].instrs.push(Instr::Call {
                        dst: Some(dst),
                        callee,
                        args,
                    });
                } else {
                    let rv = parse_rhs(&mut ctx, toks, &mut at, sp)?;
                    expect_end(toks, at, sp)?;
                    blocks[cur].instrs.push(Instr::Assign { dst, rv });
                }
            }
            _ => {
                return Err(sp.err(0, "expected instruction or terminator".into()));
            }
        }
    }
    if let Some(cur) = current {
        if !terminated[cur] {
            return Err(err_at_col1(
                lines[close].no,
                format!("block `{}` lacks a terminator", blocks[cur].name),
            ));
        }
    }
    let exit = exit.ok_or_else(|| err_at_col1(first_line, "no `ret` block".into()))?;

    let f = Function {
        name,
        blocks,
        entry: BlockId(0),
        exit,
        symbols: ctx.symbols,
    };
    Ok((f, &lines[close + 1..]))
}

/// Parses `call NAME(a, b)` starting at the `call` keyword; leaves `at`
/// just past the closing `)`.
fn parse_call(
    ctx: &mut Ctx,
    toks: &[Tok],
    at: &mut usize,
    sp: Span<'_>,
) -> Result<(Callee, [Operand; 2]), ParseError> {
    *at += 1; // the `call` keyword
    let callee = match toks.get(*at) {
        Some(Tok::Ident(name)) => Callee::by_name(name)
            .ok_or_else(|| sp.err(*at, format!("unknown intrinsic `{name}`")))?,
        other => {
            return Err(sp.err(
                *at,
                format!(
                    "expected intrinsic name, found {}",
                    other.map_or("end of line".to_string(), |t| t.to_string())
                ),
            ))
        }
    };
    *at += 1;
    expect_sym(toks, at, "(", sp)?;
    let a = ctx.operand(toks, at, sp)?;
    expect_sym(toks, at, ",", sp)?;
    let b = ctx.operand(toks, at, sp)?;
    expect_sym(toks, at, ")", sp)?;
    Ok((callee, [a, b]))
}

fn parse_rhs(
    ctx: &mut Ctx,
    toks: &[Tok],
    at: &mut usize,
    sp: Span<'_>,
) -> Result<Rvalue, ParseError> {
    // A memory read: `load p`.
    if matches!(toks.get(*at), Some(Tok::Ident(kw)) if kw == "load") {
        *at += 1;
        let a = ctx.operand(toks, at, sp)?;
        return Ok(Rvalue::Expr(Expr::Mem(a)));
    }
    // Unary: `-a`, `~a`, `~5` (but `-5` is the constant).
    match (toks.get(*at), toks.get(*at + 1)) {
        (Some(Tok::Sym("-")), Some(Tok::Ident(_))) => {
            *at += 1;
            let a = ctx.operand(toks, at, sp)?;
            return Ok(Rvalue::Expr(Expr::Un(UnOp::Neg, a)));
        }
        (Some(Tok::Sym("~")), _) => {
            *at += 1;
            let a = ctx.operand(toks, at, sp)?;
            return Ok(Rvalue::Expr(Expr::Un(UnOp::Not, a)));
        }
        _ => {}
    }
    let a = ctx.operand(toks, at, sp)?;
    match toks.get(*at) {
        None => Ok(Rvalue::Operand(a)),
        Some(Tok::Sym(sym)) => {
            let op = binop_from_sym(sym)
                .ok_or_else(|| sp.err(*at, format!("unknown binary operator `{sym}`")))?;
            *at += 1;
            let b = ctx.operand(toks, at, sp)?;
            Ok(Rvalue::Expr(Expr::Bin(op, a, b)))
        }
        Some(other) => Err(sp.err(
            *at,
            format!("expected operator or end of line, found {other}"),
        )),
    }
}

fn expect_sym(toks: &[Tok], at: &mut usize, sym: &str, sp: Span<'_>) -> Result<(), ParseError> {
    match toks.get(*at) {
        Some(Tok::Sym(s)) if *s == sym => {
            *at += 1;
            Ok(())
        }
        other => Err(sp.err(
            *at,
            format!(
                "expected `{sym}`, found {}",
                other.map_or("end of line".to_string(), |t| t.to_string())
            ),
        )),
    }
}

fn expect_end(toks: &[Tok], at: usize, sp: Span<'_>) -> Result<(), ParseError> {
    if at == toks.len() {
        Ok(())
    } else {
        Err(sp.err(at, format!("trailing tokens starting at {}", toks[at])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_diamond() {
        let f = parse_function(
            "fn d {
             entry:
               br c, l, r   # branch on input
             l:
               x = a + b
               jmp join
             r:
               x = a - -3
               jmp join
             join:
               obs x
               ret
             }",
        )
        .unwrap();
        assert_eq!(f.name, "d");
        assert_eq!(f.num_blocks(), 4);
        assert_eq!(f.block(f.entry()).name, "entry");
        assert_eq!(f.block(f.exit()).name, "join");
        crate::verify(&f).unwrap();
        // `a - -3` parses as binary sub with constant -3.
        let l = f.block_by_name("l").unwrap();
        let r = f.block_by_name("r").unwrap();
        assert_eq!(f.block(l).instrs.len(), 1);
        match f.block(r).instrs[0] {
            Instr::Assign {
                rv: Rvalue::Expr(Expr::Bin(BinOp::Sub, _, Operand::Const(-3))),
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_unary() {
        let f = parse_function("fn u {\nentry:\n  x = -a\n  y = ~x\n  ret\n}").unwrap();
        assert_eq!(f.expr_universe().len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_function("fn b {\nentry:\n  x = a +\n  ret\n}").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));

        let e = parse_function("fn b {\nentry:\n  jmp nowhere\n}").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unknown label"));
    }

    #[test]
    fn errors_carry_columns() {
        // `x = a +` — the error is the missing operand after the `+` at
        // column 9, so the reported column is just past it.
        let e = parse_function("fn b {\nentry:\n  x = a +\n  ret\n}").unwrap_err();
        assert_eq!((e.line, e.col), (3, 10));
        assert!(e.to_string().contains("column 10"), "{e}");

        // The unknown label itself starts at column 7.
        let e = parse_function("fn b {\nentry:\n  jmp nowhere\n}").unwrap_err();
        assert_eq!((e.line, e.col), (3, 7));

        // Lexer errors point at the bad character.
        let e = parse_function("fn b {\nentry:\n  x = a ? b\n  ret\n}").unwrap_err();
        assert_eq!((e.line, e.col), (3, 9));
        assert!(e.message.contains("unexpected character"));

        // Structural whole-line problems anchor at the line's first token.
        let e = parse_function("fn b {\nentry:\n  ret\n  x = 1\n}").unwrap_err();
        assert_eq!((e.line, e.col), (4, 3));
    }

    #[test]
    fn rejects_structural_problems() {
        // No ret block.
        assert!(parse_function("fn b {\nentry:\n  jmp entry\n}").is_err());
        // Two ret blocks.
        assert!(parse_function("fn b {\nentry:\n  ret\nother:\n  ret\n}").is_err());
        // Instruction after terminator.
        assert!(parse_function("fn b {\nentry:\n  ret\n  x = 1\n}").is_err());
        // Missing terminator.
        assert!(parse_function("fn b {\nentry:\n  x = 1\n}").is_err());
        // Duplicate label.
        assert!(parse_function("fn b {\nentry:\n  ret\nentry:\n  ret\n}").is_err());
        // Missing closing brace.
        assert!(parse_function("fn b {\nentry:\n  ret\n").is_err());
    }

    const LOOPY: &str = "fn w {
entry:
  x = a * b
  jmp head
head:
  br x, body, done
body:
  jmp head
done:
  ret
}";

    #[test]
    fn parses_a_profile_section() {
        let text = format!(
            "{LOOPY}\n\nprofile w {{
  entry -> head : 1
  head -> body : 99
  head -> done : 1
  body -> head : 99
}}"
        );
        let m = parse_module(&text).unwrap();
        let p = m.profile("w").unwrap();
        assert_eq!(p.entries.len(), 4);
        let f = m.get("w").unwrap();
        assert_eq!(p.resolve(f).unwrap(), vec![1, 99, 1, 99]);
        // Round-trips with the profile attached.
        let again = parse_module(&m.to_string()).unwrap();
        assert_eq!(m, again);
    }

    #[test]
    fn profile_flow_conservation_errors_are_spanned() {
        // `head` is entered 100 times but left 99+2 times.
        let text = format!(
            "{LOOPY}\n\nprofile w {{
  entry -> head : 1
  head -> body : 99
  head -> done : 2
  body -> head : 99
}}"
        );
        let e = parse_module(&text).unwrap_err();
        assert!(
            e.message.contains("flow not conserved at block `head`"),
            "{e}"
        );
        assert!(e.message.contains("100 in, 101 out"), "{e}");
        // Anchored at head's first outgoing entry: line 15, column 3.
        assert_eq!((e.line, e.col), (15, 3));
    }

    #[test]
    fn profile_reference_errors_are_spanned() {
        // Unknown function (or profile before its function).
        let e = parse_module("profile w {\n}\n\nfn w {\nentry:\n  ret\n}").unwrap_err();
        assert!(e.message.contains("must precede"), "{e}");
        assert_eq!((e.line, e.col), (1, 1));

        // Unknown target label points at the label token.
        let text = format!("{LOOPY}\n\nprofile w {{\n  entry -> nowhere : 1\n}}");
        let e = parse_module(&text).unwrap_err();
        assert!(e.message.contains("unknown block `nowhere`"), "{e}");
        assert_eq!((e.line, e.col), (14, 12));

        // Nonexistent edge.
        let text = format!("{LOOPY}\n\nprofile w {{\n  entry -> done : 1\n}}");
        let e = parse_module(&text).unwrap_err();
        assert!(e.message.contains("nonexistent edge"), "{e}");

        // Missing edge anchors at the header.
        let text = format!("{LOOPY}\n\nprofile w {{\n  entry -> head : 1\n}}");
        let e = parse_module(&text).unwrap_err();
        assert!(e.message.contains("missing edge"), "{e}");
        assert_eq!((e.line, e.col), (13, 1));

        // Duplicate profile.
        let section = "profile w {\n  entry -> head : 0\n  head -> body : 0\n  head -> done : 0\n  body -> head : 0\n}";
        let text = format!("{LOOPY}\n\n{section}\n\n{section}");
        let e = parse_module(&text).unwrap_err();
        assert!(e.message.contains("duplicate profile"), "{e}");

        // Malformed entries.
        let text = format!("{LOOPY}\n\nprofile w {{\n  entry head : 1\n}}");
        let e = parse_module(&text).unwrap_err();
        assert!(e.message.contains("expected `FROM -> TO : WEIGHT`"), "{e}");
    }

    #[test]
    fn parse_function_still_rejects_trailing_sections() {
        let text = format!("{LOOPY}\n\nprofile w {{\n}}");
        let e = parse_function(&text).unwrap_err();
        assert!(e.message.contains("content after closing"), "{e}");
    }

    #[test]
    fn arrow_is_not_an_expression_operator() {
        let e = parse_function("fn b {\nentry:\n  x = a -> b\n  ret\n}").unwrap_err();
        assert!(e.message.contains("unknown binary operator `->`"), "{e}");
        // `a - -3` and `a - 3` still tokenize as before.
        assert!(parse_function("fn b {\nentry:\n  x = a - -3\n  ret\n}").is_ok());
        assert!(parse_function("fn b {\nentry:\n  x = a - 3\n  ret\n}").is_ok());
    }

    #[test]
    fn parses_memory_instructions() {
        let f = parse_function(
            "fn m {
             entry:
               x = load p
               store p, x
               y = call min(x, 3)
               call poke(p, y)
               z = call bump(p, 1)
               obs z
               ret
             }",
        )
        .unwrap();
        crate::verify(&f).unwrap();
        let instrs = &f.block(f.entry()).instrs;
        assert!(matches!(
            instrs[0],
            Instr::Assign {
                rv: Rvalue::Expr(Expr::Mem(_)),
                ..
            }
        ));
        assert!(matches!(instrs[1], Instr::Store { .. }));
        assert!(matches!(
            instrs[2],
            Instr::Call {
                dst: Some(_),
                callee: Callee::Min,
                ..
            }
        ));
        assert!(matches!(
            instrs[3],
            Instr::Call {
                dst: None,
                callee: Callee::Poke,
                ..
            }
        ));
        // Loads join the expression universe; `min` results do not.
        assert!(f.expr_universe().iter().any(|e| matches!(e, Expr::Mem(_))));
        // Round-trips through the printer.
        let reparsed = parse_function(&f.to_string()).unwrap();
        assert_eq!(f.to_string(), reparsed.to_string());
    }

    #[test]
    fn memory_parse_errors_are_spanned() {
        // Unknown intrinsic.
        let e = parse_function("fn m {\nentry:\n  x = call sqrt(a, b)\n  ret\n}").unwrap_err();
        assert!(e.message.contains("unknown intrinsic `sqrt`"), "{e}");
        assert_eq!((e.line, e.col), (3, 12));

        // Missing load address.
        let e = parse_function("fn m {\nentry:\n  x = load\n  ret\n}").unwrap_err();
        assert!(e.message.contains("expected operand"), "{e}");
        assert_eq!(e.line, 3);

        // Store needs two operands.
        let e = parse_function("fn m {\nentry:\n  store p\n  ret\n}").unwrap_err();
        assert!(e.message.contains("expected `,`"), "{e}");

        // Call without parentheses.
        let e = parse_function("fn m {\nentry:\n  call poke p, 1\n  ret\n}").unwrap_err();
        assert!(e.message.contains("expected `(`"), "{e}");
    }

    #[test]
    fn parses_every_operator() {
        for op in BinOp::ALL {
            let text = format!("fn o {{\nentry:\n  x = a {} b\n  ret\n}}", op.symbol());
            let f = parse_function(&text).unwrap();
            match f.block(f.entry()).instrs[0] {
                Instr::Assign {
                    rv: Rvalue::Expr(Expr::Bin(parsed, _, _)),
                    ..
                } => assert_eq!(parsed, op),
                ref other => panic!("unexpected {other:?}"),
            }
        }
    }
}
