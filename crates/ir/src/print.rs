//! Textual rendering of the IR ([`Display`] impls).
//!
//! The output round-trips through [`parse_function`](crate::parse_function):
//! for every function `f`, `parse_function(&f.to_string())` succeeds and
//! yields a structurally equal function (block order, labels, instructions
//! and variable names are all preserved).

use std::fmt;

use crate::expr::{Expr, Operand, Rvalue};
use crate::function::Function;
use crate::instr::{Instr, Terminator};

/// Helper pairing an IR entity with its function for name resolution.
struct WithFn<'a, T> {
    f: &'a Function,
    item: T,
}

impl fmt::Display for WithFn<'_, Operand> {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.item {
            Operand::Var(v) => out.write_str(self.f.var_name(v)),
            Operand::Const(c) => write!(out, "{c}"),
        }
    }
}

impl fmt::Display for WithFn<'_, Rvalue> {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let f = self.f;
        match self.item {
            Rvalue::Operand(o) => write!(out, "{}", WithFn { f, item: o }),
            Rvalue::Expr(Expr::Un(op, a)) => {
                write!(out, "{}{}", op.symbol(), WithFn { f, item: a })
            }
            Rvalue::Expr(Expr::Bin(op, a, b)) => write!(
                out,
                "{} {} {}",
                WithFn { f, item: a },
                op.symbol(),
                WithFn { f, item: b }
            ),
            Rvalue::Expr(Expr::Mem(a)) => write!(out, "load {}", WithFn { f, item: a }),
        }
    }
}

impl Function {
    /// Renders a single instruction using this function's variable names.
    pub fn display_instr(&self, instr: Instr) -> String {
        match instr {
            Instr::Assign { dst, rv } => {
                format!("{} = {}", self.var_name(dst), WithFn { f: self, item: rv })
            }
            Instr::Observe(op) => format!("obs {}", WithFn { f: self, item: op }),
            Instr::Store { addr, val } => format!(
                "store {}, {}",
                WithFn {
                    f: self,
                    item: addr
                },
                WithFn { f: self, item: val }
            ),
            Instr::Call { dst, callee, args } => {
                let call = format!(
                    "call {}({}, {})",
                    callee.name(),
                    WithFn {
                        f: self,
                        item: args[0]
                    },
                    WithFn {
                        f: self,
                        item: args[1]
                    }
                );
                match dst {
                    Some(d) => format!("{} = {}", self.var_name(d), call),
                    None => call,
                }
            }
        }
    }

    /// Renders an expression (e.g. `a + b`) using this function's variable
    /// names.
    pub fn display_expr(&self, e: Expr) -> String {
        format!(
            "{}",
            WithFn {
                f: self,
                item: Rvalue::Expr(e)
            }
        )
    }

    /// Renders a terminator using this function's block labels.
    pub fn display_term(&self, term: Terminator) -> String {
        match term {
            Terminator::Jump(t) => format!("jmp {}", self.block(t).name),
            Terminator::Branch {
                cond,
                then_to,
                else_to,
            } => format!(
                "br {}, {}, {}",
                WithFn {
                    f: self,
                    item: cond
                },
                self.block(then_to).name,
                self.block(else_to).name
            ),
            Terminator::Exit => "ret".to_string(),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(out, "fn {} {{", self.name)?;
        for b in self.block_ids() {
            let data = self.block(b);
            writeln!(out, "{}:", data.name)?;
            for &instr in &data.instrs {
                writeln!(out, "  {}", self.display_instr(instr))?;
            }
            writeln!(out, "  {}", self.display_term(data.term))?;
        }
        write!(out, "}}")
    }
}

#[cfg(test)]
mod tests {
    use crate::FunctionBuilder;

    #[test]
    fn prints_expected_shape() {
        let mut b = FunctionBuilder::new("demo");
        b.assign_bin("x", "+", "a", "b").unwrap();
        b.observe("x");
        b.jump_exit();
        let f = b.finish();
        let text = f.to_string();
        assert!(text.contains("fn demo {"));
        assert!(text.contains("entry:"));
        assert!(text.contains("  x = a + b"));
        assert!(text.contains("  obs x"));
        assert!(text.contains("  jmp exit"));
        assert!(text.contains("  ret"));
    }

    #[test]
    fn roundtrips_through_parser() {
        let mut b = FunctionBuilder::new("rt");
        let l = b.create_block("l");
        let r = b.create_block("r");
        b.branch("c", l, r);
        b.switch_to(l);
        b.assign_bin("x", "<<", "a", 3).unwrap();
        b.jump_exit();
        b.switch_to(r);
        b.un("y", crate::UnOp::Not, "a");
        b.observe("y");
        b.jump_exit();
        let f = b.finish();
        let reparsed = crate::parse_function(&f.to_string()).unwrap();
        assert_eq!(f.to_string(), reparsed.to_string());
        assert_eq!(f.num_blocks(), reparsed.num_blocks());
    }
}
