//! An ergonomic builder for [`Function`]s.

use crate::expr::{BinOp, Expr, Operand, Rvalue, UnOp};
use crate::function::{BlockData, BlockId, Function};
use crate::instr::{Callee, Instr, Terminator};

/// Builds a [`Function`] imperatively, one block at a time.
///
/// The builder starts positioned at the entry block. Terminators are set
/// explicitly with [`jump`](Self::jump)/[`branch`](Self::branch)/
/// [`ret`](Self::ret); [`finish`](Self::finish) returns the function.
///
/// ```
/// use lcm_ir::FunctionBuilder;
///
/// let mut b = FunctionBuilder::new("f");
/// let body = b.create_block("body");
/// b.jump(body);
/// b.switch_to(body);
/// let x = b.assign_bin("x", "+", "a", "b")?;
/// b.observe(x);
/// b.jump_exit();
/// let f = b.finish();
/// assert_eq!(f.num_blocks(), 3);
/// lcm_ir::verify(&f)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    f: Function,
    current: BlockId,
}

/// Anything that can be turned into an [`Operand`] by the builder: an
/// existing operand, a variable name (`&str`, interned on the fly) or an
/// `i64` constant.
pub trait IntoOperand {
    /// Resolves to an operand, interning names as needed.
    fn into_operand(self, f: &mut Function) -> Operand;
}

impl IntoOperand for Operand {
    fn into_operand(self, _f: &mut Function) -> Operand {
        self
    }
}

impl IntoOperand for crate::Var {
    fn into_operand(self, _f: &mut Function) -> Operand {
        Operand::Var(self)
    }
}

impl IntoOperand for &str {
    fn into_operand(self, f: &mut Function) -> Operand {
        Operand::Var(f.var(self))
    }
}

impl IntoOperand for i64 {
    fn into_operand(self, _f: &mut Function) -> Operand {
        Operand::Const(self)
    }
}

impl FunctionBuilder {
    /// Creates a builder for a fresh function, positioned at its entry.
    pub fn new(name: impl Into<String>) -> Self {
        let f = Function::new(name);
        let current = f.entry();
        FunctionBuilder { f, current }
    }

    /// Adds a new (empty, unterminated) block with the given label.
    pub fn create_block(&mut self, name: impl Into<String>) -> BlockId {
        self.f.add_block(BlockData::new(name))
    }

    /// Moves the insertion point to `b`.
    pub fn switch_to(&mut self, b: BlockId) -> &mut Self {
        self.current = b;
        self
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Interns (or resolves) a variable name.
    pub fn var(&mut self, name: impl AsRef<str>) -> crate::Var {
        self.f.var(name)
    }

    /// Appends `dst = op` (a copy or constant load).
    pub fn assign(&mut self, dst: impl AsRef<str>, src: impl IntoOperand) -> crate::Var {
        let src = src.into_operand(&mut self.f);
        let dst = self.f.var(dst);
        self.push(Instr::Assign {
            dst,
            rv: Rvalue::Operand(src),
        });
        dst
    }

    /// Appends `dst = a <op> b`, parsing the operator symbol.
    ///
    /// # Errors
    ///
    /// Returns an error string if `op` is not a known binary operator.
    pub fn assign_bin(
        &mut self,
        dst: impl AsRef<str>,
        op: &str,
        a: impl IntoOperand,
        b: impl IntoOperand,
    ) -> Result<crate::Var, String> {
        let op = BinOp::ALL
            .into_iter()
            .find(|o| o.symbol() == op)
            .ok_or_else(|| format!("unknown binary operator `{op}`"))?;
        Ok(self.bin(dst, op, a, b))
    }

    /// Appends `dst = a <op> b`.
    pub fn bin(
        &mut self,
        dst: impl AsRef<str>,
        op: BinOp,
        a: impl IntoOperand,
        b: impl IntoOperand,
    ) -> crate::Var {
        let a = a.into_operand(&mut self.f);
        let b = b.into_operand(&mut self.f);
        let dst = self.f.var(dst);
        self.push(Instr::Assign {
            dst,
            rv: Rvalue::Expr(Expr::Bin(op, a, b)),
        });
        dst
    }

    /// Appends `dst = <op> a`.
    pub fn un(&mut self, dst: impl AsRef<str>, op: UnOp, a: impl IntoOperand) -> crate::Var {
        let a = a.into_operand(&mut self.f);
        let dst = self.f.var(dst);
        self.push(Instr::Assign {
            dst,
            rv: Rvalue::Expr(Expr::Un(op, a)),
        });
        dst
    }

    /// Appends `dst = load addr` (a heap read; a PRE candidate).
    pub fn load(&mut self, dst: impl AsRef<str>, addr: impl IntoOperand) -> crate::Var {
        let addr = addr.into_operand(&mut self.f);
        let dst = self.f.var(dst);
        self.push(Instr::Assign {
            dst,
            rv: Rvalue::Expr(Expr::Mem(addr)),
        });
        dst
    }

    /// Appends `store addr, val` (a heap write; kills every load).
    pub fn store(&mut self, addr: impl IntoOperand, val: impl IntoOperand) -> &mut Self {
        let addr = addr.into_operand(&mut self.f);
        let val = val.into_operand(&mut self.f);
        self.push(Instr::Store { addr, val })
    }

    /// Appends `dst = call callee(a, b)`; pass `""` as `dst` to discard the
    /// result (`call callee(a, b)`).
    pub fn call(
        &mut self,
        dst: impl AsRef<str>,
        callee: Callee,
        a: impl IntoOperand,
        b: impl IntoOperand,
    ) -> Option<crate::Var> {
        let a = a.into_operand(&mut self.f);
        let b = b.into_operand(&mut self.f);
        let dst = match dst.as_ref() {
            "" => None,
            name => Some(self.f.var(name)),
        };
        self.push(Instr::Call {
            dst,
            callee,
            args: [a, b],
        });
        dst
    }

    /// Appends `obs op`.
    pub fn observe(&mut self, op: impl IntoOperand) -> &mut Self {
        let op = op.into_operand(&mut self.f);
        self.push(Instr::Observe(op));
        self
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        self.f.block_mut(self.current).instrs.push(instr);
        self
    }

    /// Terminates the current block with `jmp target`.
    pub fn jump(&mut self, target: BlockId) -> &mut Self {
        self.f.block_mut(self.current).term = Terminator::Jump(target);
        self
    }

    /// Terminates the current block with a jump to the exit block.
    pub fn jump_exit(&mut self) -> &mut Self {
        let exit = self.f.exit();
        self.jump(exit)
    }

    /// Terminates the current block with `br cond, then_to, else_to`.
    pub fn branch(
        &mut self,
        cond: impl IntoOperand,
        then_to: BlockId,
        else_to: BlockId,
    ) -> &mut Self {
        let cond = cond.into_operand(&mut self.f);
        self.f.block_mut(self.current).term = Terminator::Branch {
            cond,
            then_to,
            else_to,
        };
        self
    }

    /// Read access to the function under construction.
    pub fn func(&self) -> &Function {
        &self.f
    }

    /// Consumes the builder and returns the function.
    pub fn finish(self) -> Function {
        self.f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_loop() {
        let mut b = FunctionBuilder::new("loopy");
        let head = b.create_block("head");
        let body = b.create_block("body");
        b.assign("i", 10);
        b.jump(head);

        b.switch_to(head);
        b.branch("i", body, b.func().exit());

        b.switch_to(body);
        let x = b.assign_bin("x", "+", "a", "b").unwrap();
        b.observe(x);
        b.assign_bin("i", "-", "i", 1).unwrap();
        b.jump(head);

        let f = b.finish();
        crate::verify(&f).unwrap();
        assert_eq!(f.num_blocks(), 4);
        assert_eq!(f.expr_universe().len(), 2); // a+b and i-1
    }

    #[test]
    fn unknown_operator_is_an_error() {
        let mut b = FunctionBuilder::new("f");
        assert!(b.assign_bin("x", "**", "a", "b").is_err());
    }

    #[test]
    fn builds_memory_instructions() {
        let mut b = FunctionBuilder::new("m");
        b.load("x", "p");
        b.store("p", "x");
        b.call("y", Callee::Min, "x", 3);
        assert_eq!(b.call("", Callee::Poke, "p", "y"), None);
        b.observe("y");
        b.jump_exit();
        let f = b.finish();
        crate::verify(&f).unwrap();
        assert_eq!(
            f.block(f.entry())
                .instrs
                .iter()
                .filter(|i| i.kills_memory())
                .count(),
            2
        );
        // Round-trips through print + parse.
        let reparsed = crate::parse_function(&f.to_string()).unwrap();
        assert_eq!(f.to_string(), reparsed.to_string());
    }

    #[test]
    fn unary_and_mixed_operands() {
        let mut b = FunctionBuilder::new("f");
        let a = b.var("a");
        b.un("n", UnOp::Neg, a);
        b.bin("m", BinOp::Add, a, 5);
        b.jump_exit();
        let f = b.finish();
        assert_eq!(f.expr_universe().len(), 2);
    }
}
