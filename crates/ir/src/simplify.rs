//! CFG simplification: merging straight-line chains and removing empty
//! forwarding blocks.
//!
//! Edge splitting (and edge insertion) introduces small blocks; this pass
//! is the standard clean-up that dissolves them again where they carry no
//! code. It preserves observational behaviour exactly (property-tested in
//! the workspace integration suite).

use crate::function::{BlockData, BlockId, Function};
use crate::instr::Terminator;

/// What [`simplify_cfg`] did.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SimplifyStats {
    /// Pairs of blocks merged (`a → b` with `a` the only pred and `b` the
    /// only succ).
    pub merged: usize,
    /// Empty `jmp`-only blocks whose predecessors were retargeted past
    /// them.
    pub forwarded: usize,
    /// Blocks removed from the function (after compaction).
    pub removed: usize,
}

/// Simplifies `f`'s control flow to a fixpoint:
///
/// 1. a block with a single successor whose successor has it as single
///    predecessor is merged with it;
/// 2. an empty block that just jumps on is bypassed (its predecessors are
///    retargeted), unless it is the entry;
/// 3. unreachable blocks are dropped and ids are compacted.
///
/// Block ids are invalidated; labels of surviving blocks are kept. The
/// entry keeps its role; if the exit is merged into a predecessor, that
/// predecessor becomes the exit.
pub fn simplify_cfg(f: &mut Function) -> SimplifyStats {
    let mut stats = SimplifyStats::default();
    loop {
        let changed_merge = merge_chains(f, &mut stats);
        let changed_fwd = bypass_forwarders(f, &mut stats);
        if !changed_merge && !changed_fwd {
            break;
        }
    }
    stats.removed = compact(f);
    stats
}

fn merge_chains(f: &mut Function, stats: &mut SimplifyStats) -> bool {
    let mut changed = false;
    loop {
        let preds = f.preds();
        let candidate = f.block_ids().find(|&b| {
            if b == f.exit() {
                return false;
            }
            let mut succs = f.succs(b);
            let (first, second) = (succs.next(), succs.next());
            match (first, second) {
                (Some(s), None) => s != b && s != f.entry() && preds[s.index()].len() == 1,
                _ => false,
            }
        });
        let Some(b) = candidate else {
            return changed;
        };
        let s = f.succs(b).next().expect("candidate has one successor");
        let succ_data = std::mem::take(&mut f.block_mut(s).instrs);
        let succ_term = f.block(s).term;
        let body = f.block_mut(b);
        body.instrs.extend(succ_data);
        body.term = succ_term;
        // Neutralise the husk: make it an unreachable self-loop; compaction
        // removes it.
        f.block_mut(s).term = Terminator::Jump(s);
        if s == f.exit() {
            f.exit = b;
        }
        stats.merged += 1;
        changed = true;
    }
}

fn bypass_forwarders(f: &mut Function, stats: &mut SimplifyStats) -> bool {
    let mut changed = false;
    loop {
        let preds = f.preds();
        let candidate = f.block_ids().find(|&b| {
            b != f.entry()
                && f.block(b).instrs.is_empty()
                && matches!(f.block(b).term, Terminator::Jump(t) if t != b)
                && !preds[b.index()].is_empty()
        });
        let Some(b) = candidate else {
            return changed;
        };
        let Terminator::Jump(target) = f.block(b).term else {
            unreachable!("candidate is a forwarder");
        };
        let pred_list = preds[b.index()].clone();
        for p in pred_list {
            let term = &mut f.block_mut(p).term;
            term.retarget(b, target);
        }
        stats.forwarded += 1;
        changed = true;
    }
}

/// Drops unreachable blocks and renumbers the survivors.
fn compact(f: &mut Function) -> usize {
    let reachable = crate::graph::reachable_from_entry(f);
    if reachable.iter().all(|&r| r) {
        return 0;
    }
    let mut remap: Vec<Option<BlockId>> = vec![None; f.num_blocks()];
    let mut blocks: Vec<BlockData> = Vec::new();
    for b in f.block_ids() {
        if reachable[b.index()] {
            remap[b.index()] = Some(BlockId::from_index(blocks.len()));
            blocks.push(f.block(b).clone());
        }
    }
    let removed = f.num_blocks() - blocks.len();
    // Rewrite successors slot by slot — a sequence of `retarget` calls
    // would alias when an old id coincides with another target's new id.
    let map = |old: BlockId| remap[old.index()].expect("reachable block targets reachable block");
    for data in &mut blocks {
        data.term = match data.term {
            Terminator::Jump(t) => Terminator::Jump(map(t)),
            Terminator::Branch {
                cond,
                then_to,
                else_to,
            } => Terminator::Branch {
                cond,
                then_to: map(then_to),
                else_to: map(else_to),
            },
            Terminator::Exit => Terminator::Exit,
        };
    }
    f.blocks = blocks;
    f.entry = remap[f.entry.index()].expect("entry is reachable");
    f.exit = remap[f.exit.index()].expect("exit is reachable");
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_function, verify};

    #[test]
    fn merges_chains_and_drops_forwarders() {
        let mut f = parse_function(
            "fn chain {
             entry:
               x = 1
               jmp a
             a:
               y = 2
               jmp b
             b:
               jmp c
             c:
               obs y
               ret
             }",
        )
        .unwrap();
        let stats = simplify_cfg(&mut f);
        verify(&f).unwrap();
        assert_eq!(f.num_blocks(), 1);
        assert!(stats.merged >= 2);
        assert_eq!(f.entry(), f.exit());
        assert_eq!(f.num_instrs(), 3);
    }

    #[test]
    fn keeps_branch_structure() {
        let mut f = parse_function(
            "fn d {
             entry:
               br c, l, r
             l:
               x = 1
               jmp join
             r:
               jmp join
             join:
               obs x
               ret
             }",
        )
        .unwrap();
        let before = f.num_blocks();
        let stats = simplify_cfg(&mut f);
        verify(&f).unwrap();
        // r is an empty forwarder: bypassed. join has 2 preds: not merged.
        assert_eq!(stats.forwarded, 1);
        assert_eq!(f.num_blocks(), before - 1);
        assert!(f.block_by_name("r").is_none());
    }

    #[test]
    fn undoes_redundant_edge_splits() {
        let mut f = parse_function(
            "fn s {
             entry:
               br c, a, b
             a:
               jmp j
             b:
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        // Split both entry edges, then simplify: the synthetic blocks are
        // empty forwarders and must disappear again.
        f.split_edge(f.entry(), 0);
        f.split_edge(f.entry(), 1);
        assert_eq!(f.num_blocks(), 6);
        simplify_cfg(&mut f);
        verify(&f).unwrap();
        assert_eq!(f.num_blocks(), 2); // a, b, j collapse via forwarding+merge
    }

    #[test]
    fn entry_forwarder_is_kept() {
        let mut f = parse_function(
            "fn e {
             entry:
               jmp mid
             mid:
               br c, mid, done
             done:
               ret
             }",
        )
        .unwrap();
        // entry is empty but must not be bypassed (it is the entry);
        // mid cannot merge into entry (mid has 2 preds).
        simplify_cfg(&mut f);
        verify(&f).unwrap();
        assert!(f.block_by_name("mid").is_some());
    }

    #[test]
    fn self_loop_is_untouched() {
        let mut f = parse_function(
            "fn l {
             entry:
               jmp spin
             spin:
               x = x + 1
               br c, spin, out
             out:
               ret
             }",
        )
        .unwrap();
        let printed = f.to_string();
        simplify_cfg(&mut f);
        verify(&f).unwrap();
        // entry→spin can't merge (spin has 2 preds); nothing else applies.
        assert_eq!(f.to_string(), printed);
    }
}
