//! Structural verification of [`Function`]s.

use std::error::Error;
use std::fmt;

use crate::function::{BlockId, Function};
use crate::graph;
use crate::instr::Terminator;

/// A structural invariant violation found by [`verify`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VerifyError {
    /// A terminator names a block id outside the block table.
    DanglingTarget {
        /// Block whose terminator is broken.
        from: BlockId,
        /// The out-of-range target.
        target: BlockId,
    },
    /// The entry block has predecessors.
    EntryHasPredecessors(BlockId),
    /// A block other than the exit is terminated by `ret`.
    StrayExit(BlockId),
    /// The designated exit block is not terminated by `ret`.
    ExitNotRet(BlockId),
    /// A block is not reachable from the entry.
    Unreachable(BlockId),
    /// A block cannot reach the exit.
    CannotReachExit(BlockId),
    /// An instruction mentions a variable missing from the symbol table.
    UnknownVar(BlockId),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::DanglingTarget { from, target } => {
                write!(f, "block {from} jumps to non-existent block {target}")
            }
            VerifyError::EntryHasPredecessors(b) => {
                write!(f, "entry block {b} has predecessors")
            }
            VerifyError::StrayExit(b) => write!(f, "non-exit block {b} is terminated by ret"),
            VerifyError::ExitNotRet(b) => write!(f, "exit block {b} is not terminated by ret"),
            VerifyError::Unreachable(b) => write!(f, "block {b} is unreachable from entry"),
            VerifyError::CannotReachExit(b) => write!(f, "block {b} cannot reach the exit"),
            VerifyError::UnknownVar(b) => {
                write!(
                    f,
                    "block {b} mentions a variable missing from the symbol table"
                )
            }
        }
    }
}

impl Error for VerifyError {}

/// Checks the structural invariants the rest of the workspace relies on:
///
/// 1. every terminator target is a valid block id,
/// 2. the entry block has no predecessors,
/// 3. exactly the designated exit block is terminated by `ret`,
/// 4. every block is reachable from the entry, and
/// 5. every block can reach the exit (the paper's flow graphs have every
///    node on a path from `s` to `e`),
/// 6. every mentioned variable is interned.
///
/// # Errors
///
/// Returns the first violation found, in the order above.
pub fn verify(f: &Function) -> Result<(), VerifyError> {
    let n = f.num_blocks();
    for b in f.block_ids() {
        for t in f.succs(b) {
            if t.index() >= n {
                return Err(VerifyError::DanglingTarget { from: b, target: t });
            }
        }
    }

    let preds = f.preds();
    if !preds[f.entry().index()].is_empty() {
        return Err(VerifyError::EntryHasPredecessors(f.entry()));
    }

    for b in f.block_ids() {
        let is_ret = matches!(f.block(b).term, Terminator::Exit);
        if is_ret && b != f.exit() {
            return Err(VerifyError::StrayExit(b));
        }
        if !is_ret && b == f.exit() {
            return Err(VerifyError::ExitNotRet(b));
        }
    }

    let reachable = graph::reachable_from_entry(f);
    if let Some(b) = f.block_ids().find(|b| !reachable[b.index()]) {
        return Err(VerifyError::Unreachable(b));
    }
    let reaches_exit = graph::reaches_exit(f);
    if let Some(b) = f.block_ids().find(|b| !reaches_exit[b.index()]) {
        return Err(VerifyError::CannotReachExit(b));
    }

    let nvars = f.symbols.len();
    for b in f.block_ids() {
        let data = f.block(b);
        let bad_var = data
            .instrs
            .iter()
            .flat_map(|i| i.def().into_iter().chain(i.uses()))
            .chain(data.term.use_var())
            .any(|v| v.index() >= nvars);
        if bad_var {
            return Err(VerifyError::UnknownVar(b));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::BlockData;
    use crate::Operand;

    #[test]
    fn accepts_minimal_function() {
        let f = Function::new("ok");
        verify(&f).unwrap();
    }

    #[test]
    fn rejects_unreachable_block() {
        let mut f = Function::new("u");
        f.add_block(BlockData::new("island")); // Exit-terminated, unreachable.
        match verify(&f) {
            // The island is also a stray exit; either error is acceptable,
            // but stray-exit is checked first.
            Err(VerifyError::StrayExit(_)) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_block_that_cannot_reach_exit() {
        let mut f = Function::new("t");
        let spin = f.add_block(BlockData::new("spin"));
        f.block_mut(spin).term = crate::Terminator::Jump(spin);
        let c = f.var("c");
        let exit = f.exit();
        let entry = f.entry();
        f.block_mut(entry).term = crate::Terminator::Branch {
            cond: Operand::Var(c),
            then_to: spin,
            else_to: exit,
        };
        assert_eq!(verify(&f), Err(VerifyError::CannotReachExit(spin)));
    }

    #[test]
    fn rejects_entry_with_predecessors() {
        let mut f = Function::new("e");
        let entry = f.entry();
        let mid = f.add_block(BlockData::new("mid"));
        let exit = f.exit();
        let c = f.var("c");
        f.block_mut(entry).term = crate::Terminator::Jump(mid);
        f.block_mut(mid).term = crate::Terminator::Branch {
            cond: Operand::Var(c),
            then_to: entry,
            else_to: exit,
        };
        assert_eq!(verify(&f), Err(VerifyError::EntryHasPredecessors(entry)));
    }

    #[test]
    fn rejects_dangling_target() {
        let mut f = Function::new("d");
        let entry = f.entry();
        f.block_mut(entry).term = crate::Terminator::Jump(crate::BlockId(99));
        assert!(matches!(
            verify(&f),
            Err(VerifyError::DanglingTarget { .. })
        ));
    }

    #[test]
    fn rejects_unknown_variable() {
        let mut f = Function::new("v");
        let entry = f.entry();
        f.push_observe(entry, Operand::Var(crate::Var(42)));
        assert_eq!(verify(&f), Err(VerifyError::UnknownVar(entry)));
    }
}
