//! Graphviz (DOT) export, for visualising the paper's figures.

use std::fmt::Write as _;

use crate::function::{BlockId, Function};
use crate::instr::Terminator;

/// Renders `f` as a Graphviz digraph, one record-shaped node per block with
/// its instructions, plus optional per-block annotations (e.g. predicate
/// values) supplied by `annotate`.
///
/// ```
/// use lcm_ir::{dot, parse_function};
///
/// let f = parse_function("fn g {\nentry:\n  x = a + b\n  ret\n}")?;
/// let text = dot::render(&f, |_| None);
/// assert!(text.starts_with("digraph g {"));
/// assert!(text.contains("x = a + b"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render(f: &Function, mut annotate: impl FnMut(BlockId) -> Option<String>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(&f.name));
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for b in f.block_ids() {
        let data = f.block(b);
        let mut label = format!("{}:", data.name);
        for &i in &data.instrs {
            label.push_str("\\l  ");
            label.push_str(&escape(&f.display_instr(i)));
        }
        if let Some(note) = annotate(b) {
            label.push_str("\\l  # ");
            label.push_str(&escape(&note));
        }
        label.push_str("\\l");
        let shape = if b == f.entry() || b == f.exit() {
            ", peripheries=2"
        } else {
            ""
        };
        let _ = writeln!(out, "  {b} [label=\"{label}\"{shape}];");
    }
    for b in f.block_ids() {
        match f.block(b).term {
            Terminator::Jump(t) => {
                let _ = writeln!(out, "  {b} -> {t};");
            }
            Terminator::Branch {
                then_to, else_to, ..
            } => {
                let _ = writeln!(out, "  {b} -> {then_to} [label=\"T\"];");
                let _ = writeln!(out, "  {b} -> {else_to} [label=\"F\"];");
            }
            Terminator::Exit => {}
        }
    }
    out.push_str("}\n");
    out
}

/// Renders every function of `m` as its own `digraph`, separated by a blank
/// line. Graphviz treats a multi-graph file as a sequence of pages, so batch
/// results stay inspectable with a single `dot` invocation.
///
/// ```
/// use lcm_ir::{dot, parse_module};
///
/// let m = parse_module(
///     "fn a {\nentry:\n  x = p + q\n  ret\n}\n\nfn b {\nentry:\n  ret\n}",
/// )?;
/// let text = dot::render_module(&m);
/// assert_eq!(text.matches("digraph ").count(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render_module(m: &crate::Module) -> String {
    let mut out = String::new();
    for (i, f) in m.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&render(f, |_| None));
    }
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if cleaned.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_function;

    #[test]
    fn renders_edges_and_annotations() {
        let f = parse_function(
            "fn d {
             entry:
               br c, l, r
             l:
               jmp j
             r:
               jmp j
             j:
               ret
             }",
        )
        .unwrap();
        let text = render(&f, |b| (b == f.entry()).then(|| "note".to_string()));
        assert!(text.contains("[label=\"T\"]"));
        assert!(text.contains("[label=\"F\"]"));
        assert!(text.contains("# note"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize("1bad name"), "g_1bad_name");
        assert_eq!(sanitize("fine"), "fine");
    }
}
