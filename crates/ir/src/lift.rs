//! A leader-based lifter from flat three-address listings to module IR.
//!
//! A *flat listing* is the classic bytecode shape: one instruction per line,
//! implicitly numbered from 0, with control expressed as jumps to
//! instruction indices rather than labels:
//!
//! ```text
//! listing  := flatfn+ | flatbody          # unnamed single function
//! flatfn   := "fn" NAME flatbody
//! flatbody := flatline+
//! flatline := "goto" INDEX                # unconditional jump
//!           | "if" IDENT "goto" INDEX     # branch, falls through otherwise
//!           | "ret"                       # function exit
//!           | INSTR                       # any straight-line instruction
//! ```
//!
//! `INSTR` is any instruction of the block-structured grammar
//! ([`parse_function`](crate::parse_function)): assignments (including
//! `load`/`call` forms), `store`, and `obs`. `#` starts a comment; blank
//! lines are ignored; `INDEX` counts instructions (not source lines).
//!
//! Lifting is the textbook two-pass algorithm:
//!
//! 1. **Leader scan.** Instruction 0 is a leader; the target of every
//!    `goto`/`if..goto` is a leader; the instruction after any control
//!    transfer (`goto`, `if..goto`, `ret`) is a leader.
//! 2. **Block stitching.** Each leader starts a basic block running to the
//!    next leader. A block ending in `goto N` jumps to N's block; one ending
//!    in `if x goto N` branches to N's block or falls through to the next
//!    block; one ending in `ret` exits; one ending because the *next*
//!    instruction is a leader falls through with an unconditional jump.
//!
//! Blocks are labelled `L<leader index>` (the entry keeps `L0`), so lifted
//! output is stable and diffable. Blocks unreachable from instruction 0
//! (dead code after an unconditional transfer) are dropped — the verifier
//! would reject them, and a lifter exists precisely to clean up flat code.
//!
//! Errors carry 1-based *source file* lines, even though the lifter
//! internally reuses the block-structured parser on generated text.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use crate::function::Function;
use crate::module::Module;
use crate::parse::parse_function;

/// An error produced by [`lift_module`], anchored to a 1-based line of the
/// flat listing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LiftError {
    /// 1-based source line of the offending listing line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lift error on line {}: {}", self.line, self.message)
    }
}

impl Error for LiftError {}

/// One instruction of a flat listing, classified for the leader scan.
enum FlatInstr<'a> {
    /// `goto N`.
    Goto(usize),
    /// `if x goto N` — falls through when `x` is zero.
    If { cond: &'a str, target: usize },
    /// `ret`.
    Ret,
    /// Any straight-line instruction, passed through verbatim.
    Plain(&'a str),
}

impl FlatInstr<'_> {
    /// Returns `true` if control never falls through this instruction.
    fn ends_block(&self) -> bool {
        !matches!(self, FlatInstr::Plain(_))
    }
}

/// Lifts a flat listing into a [`Module`].
///
/// The listing holds either one unnamed function (no `fn` lines; it is
/// named `lifted`) or one or more `fn NAME` sections, each restarting
/// instruction numbering at 0. The result is ordinary module IR: print it,
/// pipe it to `lcmopt batch`, or optimize it in process.
///
/// # Errors
///
/// Returns a [`LiftError`] with the source line on a malformed control
/// line, an out-of-range target, a listing whose control falls off the end,
/// an empty function, a duplicate function name, or a malformed
/// straight-line instruction (reported at its listing line).
pub fn lift_module(text: &str) -> Result<LiftedModule, LiftError> {
    // Split into (source line number, text) pairs, dropping blanks/comments.
    let mut sections: Vec<(String, Vec<(usize, &str)>)> = Vec::new();
    let mut saw_fn_header = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw.find('#') {
            Some(cut) => &raw[..cut],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        if words.next() == Some("fn") {
            let name = words.next().unwrap_or("");
            if name.is_empty() || words.next().is_some() {
                return Err(LiftError {
                    line: lineno,
                    message: "expected `fn NAME` section header".into(),
                });
            }
            if !saw_fn_header && !sections.is_empty() {
                return Err(LiftError {
                    line: lineno,
                    message: "`fn` header after unnamed instructions".into(),
                });
            }
            saw_fn_header = true;
            sections.push((name.to_string(), Vec::new()));
            continue;
        }
        if sections.is_empty() {
            sections.push(("lifted".to_string(), Vec::new()));
        }
        sections
            .last_mut()
            .expect("section exists")
            .1
            .push((lineno, line));
    }
    if sections.is_empty() {
        return Err(LiftError {
            line: 1,
            message: "empty listing".into(),
        });
    }

    let mut module = Module::default();
    let mut functions = Vec::new();
    for (name, lines) in &sections {
        let header_line = lines.first().map_or(1, |&(l, _)| l);
        let (f, stats) = lift_function(name, lines)?;
        functions.push(stats);
        if let Err(f) = module.push(f) {
            return Err(LiftError {
                line: header_line,
                message: format!("duplicate function `{}` in listing", f.name),
            });
        }
    }
    Ok(LiftedModule { module, functions })
}

/// The result of [`lift_module`]: the lifted IR plus per-function lifting
/// statistics (for `--emit stats`-style reporting and tests).
#[derive(Debug)]
pub struct LiftedModule {
    /// The lifted module, ready for printing or optimization.
    pub module: Module,
    /// Per-function statistics, in listing order.
    pub functions: Vec<LiftStats>,
}

/// Statistics from lifting one function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LiftStats {
    /// Function name.
    pub name: String,
    /// Number of instructions in the flat listing.
    pub instrs: usize,
    /// Number of leaders found (= number of blocks before pruning).
    pub leaders: usize,
    /// Number of unreachable blocks dropped.
    pub dropped: usize,
}

/// Lifts one function's listing lines (source line number, text).
fn lift_function(name: &str, lines: &[(usize, &str)]) -> Result<(Function, LiftStats), LiftError> {
    let header_line = lines.first().map_or(1, |&(l, _)| l);
    if lines.is_empty() {
        return Err(LiftError {
            line: header_line,
            message: format!("function `{name}` has no instructions"),
        });
    }

    // Classify each instruction and validate targets.
    let n = lines.len();
    let mut flat = Vec::with_capacity(n);
    for &(lineno, text) in lines {
        let words: Vec<&str> = text.split_whitespace().collect();
        let target = |t: &str| -> Result<usize, LiftError> {
            let idx = t.parse::<usize>().map_err(|_| LiftError {
                line: lineno,
                message: format!("expected instruction index, found `{t}`"),
            })?;
            if idx >= n {
                return Err(LiftError {
                    line: lineno,
                    message: format!(
                        "jump target {idx} out of range (listing has {n} instructions)"
                    ),
                });
            }
            Ok(idx)
        };
        let instr = match words.as_slice() {
            ["goto", t] => FlatInstr::Goto(target(t)?),
            ["goto", ..] => {
                return Err(LiftError {
                    line: lineno,
                    message: "expected `goto INDEX`".into(),
                })
            }
            ["if", cond, "goto", t] => FlatInstr::If {
                cond,
                target: target(t)?,
            },
            ["if", ..] => {
                return Err(LiftError {
                    line: lineno,
                    message: "expected `if VAR goto INDEX`".into(),
                })
            }
            ["ret"] => FlatInstr::Ret,
            _ => FlatInstr::Plain(text),
        };
        flat.push((lineno, instr));
    }

    // Leader scan.
    let mut leaders = BTreeSet::new();
    leaders.insert(0usize);
    for (i, (_, instr)) in flat.iter().enumerate() {
        match instr {
            FlatInstr::Goto(t) | FlatInstr::If { target: t, .. } => {
                leaders.insert(*t);
                if i + 1 < n {
                    leaders.insert(i + 1);
                }
            }
            FlatInstr::Ret => {
                if i + 1 < n {
                    leaders.insert(i + 1);
                }
            }
            FlatInstr::Plain(_) => {}
        }
    }
    let leaders: Vec<usize> = leaders.into_iter().collect();
    let block_of = |instr_idx: usize| -> usize { leaders.partition_point(|&l| l <= instr_idx) - 1 };

    // Control must not fall off the end of the listing.
    let (last_line, last) = &flat[n - 1];
    if !last.ends_block() || matches!(last, FlatInstr::If { .. }) {
        return Err(LiftError {
            line: *last_line,
            message: "control falls off the end of the listing (expected `goto` or `ret`)".into(),
        });
    }

    // Reachability over blocks (drop dead code after unconditional
    // transfers), following each block's stitched successors.
    let num_blocks = leaders.len();
    let block_range = |b: usize| {
        let start = leaders[b];
        let end = leaders.get(b + 1).copied().unwrap_or(n);
        (start, end)
    };
    let mut reachable = vec![false; num_blocks];
    let mut stack = vec![0usize];
    while let Some(b) = stack.pop() {
        if std::mem::replace(&mut reachable[b], true) {
            continue;
        }
        let (_, end) = block_range(b);
        match &flat[end - 1].1 {
            FlatInstr::Goto(t) => stack.push(block_of(*t)),
            FlatInstr::If { target, .. } => {
                stack.push(block_of(*target));
                stack.push(block_of(end)); // fallthrough: `end` is a leader
            }
            FlatInstr::Ret => {}
            FlatInstr::Plain(_) => stack.push(block_of(end)),
        }
    }
    let dropped = reachable.iter().filter(|&&r| !r).count();

    // The block-structured IR has a unique exit; a listing with several
    // reachable `ret`s routes them all through a synthesized `L.exit`.
    let reachable_rets = (0..num_blocks)
        .filter(|&b| reachable[b] && matches!(flat[block_range(b).1 - 1].1, FlatInstr::Ret))
        .count();
    let merge_rets = reachable_rets > 1;

    // Stitch the reachable blocks into block-structured text and reuse the
    // main parser, remapping generated lines back to listing lines so
    // instruction-syntax errors stay file-relative.
    let mut gen = String::new();
    let mut gen_lines: Vec<usize> = Vec::new(); // generated line -> source line
    let mut push_line = |gen: &mut String, src_line: usize, text: &str| {
        gen.push_str(text);
        gen.push('\n');
        gen_lines.push(src_line);
    };
    push_line(&mut gen, header_line, &format!("fn {name} {{"));
    for b in 0..num_blocks {
        if !reachable[b] {
            continue;
        }
        let (start, end) = block_range(b);
        push_line(&mut gen, flat[start].0, &format!("L{}:", leaders[b]));
        for (lineno, instr) in &flat[start..end] {
            match instr {
                FlatInstr::Plain(text) => push_line(&mut gen, *lineno, text),
                FlatInstr::Goto(t) => push_line(
                    &mut gen,
                    *lineno,
                    &format!("jmp L{}", leaders[block_of(*t)]),
                ),
                FlatInstr::If { cond, target } => push_line(
                    &mut gen,
                    *lineno,
                    &format!(
                        "br {cond}, L{}, L{}",
                        leaders[block_of(*target)],
                        leaders[block_of(end)]
                    ),
                ),
                FlatInstr::Ret if merge_rets => push_line(&mut gen, *lineno, "jmp L.exit"),
                FlatInstr::Ret => push_line(&mut gen, *lineno, "ret"),
            }
        }
        // Fallthrough into the next leader needs an explicit jump.
        if let FlatInstr::Plain(_) = flat[end - 1].1 {
            push_line(
                &mut gen,
                flat[end - 1].0,
                &format!("jmp L{}", leaders[block_of(end)]),
            );
        }
    }
    if merge_rets {
        push_line(&mut gen, *last_line, "L.exit:");
        push_line(&mut gen, *last_line, "ret");
    }
    push_line(&mut gen, *last_line, "}");

    let f = parse_function(&gen).map_err(|e| LiftError {
        line: gen_lines.get(e.line - 1).copied().unwrap_or(header_line),
        message: e.message,
    })?;
    let stats = LiftStats {
        name: name.to_string(),
        instrs: n,
        leaders: num_blocks,
        dropped,
    };
    Ok((f, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifts_a_counting_loop() {
        // 0: i = 10        leader (first)
        // 1: x = a + b     leader (follows nothing, target of 5's goto? no)
        // 2: obs x
        // 3: i = i - 1
        // 4: if i goto 1
        // 5: ret           leader (follows transfer)
        let lifted = lift_module(
            "i = 10\n\
             x = a + b\n\
             obs x\n\
             i = i - 1\n\
             if i goto 1\n\
             ret\n",
        )
        .unwrap();
        let f = lifted.module.get("lifted").unwrap();
        crate::verify(f).unwrap();
        assert_eq!(f.num_blocks(), 3); // L0, L1, L5
        assert_eq!(lifted.functions[0].leaders, 3);
        assert_eq!(lifted.functions[0].dropped, 0);
        let text = f.to_string();
        assert!(text.contains("L0:"), "{text}");
        assert!(text.contains("br i, L1, L5"), "{text}");
        // The loop header is the fallthrough target of the entry block.
        assert!(text.contains("jmp L1"), "{text}");
    }

    #[test]
    fn stitches_fallthrough_and_goto() {
        let lifted = lift_module(
            "x = 1\n\
             goto 3\n\
             x = 2\n\
             obs x\n\
             ret\n",
        )
        .unwrap();
        let f = lifted.module.get("lifted").unwrap();
        crate::verify(f).unwrap();
        // Instruction 2 (`x = 2`) is unreachable dead code: its block is
        // dropped.
        assert_eq!(lifted.functions[0].dropped, 1);
        let text = f.to_string();
        assert!(!text.contains("x = 2"), "{text}");
        assert!(text.contains("jmp L3"), "{text}");
    }

    #[test]
    fn lifts_named_sections_and_memory_ops() {
        let lifted = lift_module(
            "# two functions\n\
             fn first\n\
             x = load p\n\
             store p, x\n\
             ret\n\
             fn second\n\
             y = call bump(p, 1)\n\
             obs y\n\
             ret\n",
        )
        .unwrap();
        assert_eq!(lifted.module.len(), 2);
        for f in lifted.module.functions() {
            crate::verify(f).unwrap();
        }
        assert_eq!(lifted.functions[0].name, "first");
        assert_eq!(lifted.functions[1].name, "second");
    }

    #[test]
    fn errors_are_source_relative() {
        // Bad jump target.
        let e = lift_module("x = 1\ngoto 9\nret\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("out of range"), "{e}");

        // Control falls off the end.
        let e = lift_module("x = 1\nobs x\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("falls off the end"), "{e}");
        let e = lift_module("x = 1\nif x goto 0\n").unwrap_err();
        assert!(e.message.contains("falls off the end"), "{e}");

        // A malformed straight-line instruction is reported at its
        // *listing* line even though parsing happens on generated text.
        let e = lift_module("x = 1\nobs x\nx = +\nret\n").unwrap_err();
        assert_eq!(e.line, 3);

        // Malformed control lines.
        assert!(lift_module("goto\nret\n").is_err());
        assert!(lift_module("if x y goto 0\nret\n").is_err());

        // Empty listing / empty function.
        assert!(lift_module("").is_err());
        assert!(lift_module("# nothing\n").is_err());
        assert!(lift_module("fn a\nfn b\nret\n").is_err());

        // Duplicate names.
        let e = lift_module("fn a\nret\nfn a\nret\n").unwrap_err();
        assert!(e.message.contains("duplicate function"), "{e}");

        // `fn` after unnamed instructions.
        let e = lift_module("x = 1\nfn a\nret\n").unwrap_err();
        assert!(e.message.contains("after unnamed"), "{e}");
    }

    #[test]
    fn multiple_rets_share_a_synthesized_exit() {
        // 0: if c goto 3 / 1: obs c / 2: ret / 3: obs c / 4: ret
        let lifted = lift_module("if c goto 3\nobs c\nret\nobs c\nret\n").unwrap();
        let f = lifted.module.get("lifted").unwrap();
        crate::verify(f).unwrap();
        let text = f.to_string();
        assert!(text.contains("L.exit:"), "{text}");
        assert_eq!(text.matches("jmp L.exit").count(), 2, "{text}");
    }

    #[test]
    fn parallel_if_edges_and_self_loops_lift() {
        // `if` whose target is its own fallthrough: two parallel edges.
        let lifted = lift_module("if c goto 1\nobs c\nret\n").unwrap();
        crate::verify(lifted.module.get("lifted").unwrap()).unwrap();

        // A one-instruction self-loop body.
        let lifted = lift_module("x = 1\nif x goto 1\nret\n").unwrap();
        let f = lifted.module.get("lifted").unwrap();
        crate::verify(f).unwrap();
        assert!(f.to_string().contains("br x, L1, L2"));
    }
}
