//! Edge-execution profiles: optional frequency weights for a function's
//! control-flow edges.
//!
//! A [`Profile`] is the textual counterpart of an edge-frequency measurement:
//! one `(from, to, weight)` entry per CFG edge, keyed by block labels so it
//! survives printing and re-parsing. Profiles ride along with their function
//! in a [`Module`](crate::Module) as an optional `profile` section:
//!
//! ```text
//! profile NAME {
//!   entry -> loop : 1
//!   loop -> loop : 99
//!   loop -> exit : 1
//! }
//! ```
//!
//! A profile is only meaningful if it describes a *realisable* set of
//! executions, which the structural check [`Profile::resolve`] enforces:
//! every edge of the function appears exactly once, and flow is conserved —
//! at every block except entry and exit, the incoming weights sum to the
//! outgoing weights. (Entry sources flow, exit sinks it; a run that enters a
//! block must also leave it.) The parser runs the same check, so a profile
//! that parses is always consistent.

use std::fmt;

use crate::function::{EdgeList, Function};

/// An edge-frequency profile for one function.
///
/// Entries are stored in source order and refer to blocks by label, so a
/// profile round-trips through the textual format independently of
/// [`EdgeList`] numbering. Use [`Profile::resolve`] to turn it into dense
/// per-[`EdgeId`](crate::EdgeId) weights (and to validate it).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Profile {
    /// Name of the function the profile describes.
    pub function: String,
    /// The `(from, to, weight)` entries. A conditional branch with both
    /// targets equal (parallel edges) is listed once per edge; repeated
    /// entries for the same label pair match successor slots in order.
    pub entries: Vec<ProfileEntry>,
}

/// One `FROM -> TO : WEIGHT` line of a profile section.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProfileEntry {
    /// Label of the source block.
    pub from: String,
    /// Label of the target block.
    pub to: String,
    /// Number of times the edge was (or is pretended to have been)
    /// traversed.
    pub weight: u64,
}

/// Why a profile does not fit a function — see [`Profile::resolve`].
///
/// Variants that stem from one offending entry carry its index into
/// [`Profile::entries`], so the parser can map the failure back to a source
/// position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProfileError {
    /// An entry names a label the function does not have.
    UnknownBlock {
        /// The unresolvable label.
        label: String,
        /// Index of the offending entry.
        entry: usize,
    },
    /// An entry names two existing blocks with no CFG edge between them,
    /// or more entries than parallel edges exist for the pair.
    NoSuchEdge {
        /// Source label.
        from: String,
        /// Target label.
        to: String,
        /// Index of the offending entry.
        entry: usize,
    },
    /// An edge of the function has no entry.
    MissingEdge {
        /// Source label.
        from: String,
        /// Target label.
        to: String,
    },
    /// A block other than entry or exit does not conserve flow.
    NotConserving {
        /// Label of the violating block.
        block: String,
        /// Sum of incoming weights.
        incoming: u64,
        /// Sum of outgoing weights.
        outgoing: u64,
        /// Index of the block's first outgoing entry (for error anchoring).
        entry: usize,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::UnknownBlock { label, .. } => {
                write!(f, "profile references unknown block `{label}`")
            }
            ProfileError::NoSuchEdge { from, to, .. } => {
                write!(f, "profile references nonexistent edge `{from} -> {to}`")
            }
            ProfileError::MissingEdge { from, to } => {
                write!(f, "profile is missing edge `{from} -> {to}`")
            }
            ProfileError::NotConserving {
                block,
                incoming,
                outgoing,
                ..
            } => write!(
                f,
                "flow not conserved at block `{block}`: {incoming} in, {outgoing} out"
            ),
        }
    }
}

impl std::error::Error for ProfileError {}

impl Profile {
    /// Builds a profile from dense per-edge weights, in the edge order of
    /// [`EdgeList::new`]`(f)`. The inverse of [`Profile::resolve`].
    ///
    /// # Panics
    ///
    /// Panics if `weights` does not have one weight per edge of `f`.
    pub fn from_weights(f: &Function, weights: &[u64]) -> Profile {
        let edges = EdgeList::new(f);
        assert_eq!(
            weights.len(),
            edges.len(),
            "one weight per edge of `{}`",
            f.name
        );
        let entries = edges
            .iter()
            .map(|(id, e)| ProfileEntry {
                from: f.block(e.from).name.clone(),
                to: f.block(e.to).name.clone(),
                weight: weights[id.index()],
            })
            .collect();
        Profile {
            function: f.name.clone(),
            entries,
        }
    }

    /// Resolves the profile against `f`, returning one weight per edge of
    /// [`EdgeList::new`]`(f)` (dense [`EdgeId`](crate::EdgeId) order).
    ///
    /// Resolution is purely structural — the profile's
    /// [`function`](Profile::function) name is not compared to `f.name`, so
    /// a profile survives function renaming (the batch driver canonicalises
    /// names before caching).
    ///
    /// # Errors
    ///
    /// [`ProfileError`] if an entry references an unknown label or
    /// nonexistent edge, an edge of `f` has no entry, or flow is not
    /// conserved at some internal block.
    pub fn resolve(&self, f: &Function) -> Result<Vec<u64>, ProfileError> {
        let edges = EdgeList::new(f);
        let mut weights: Vec<Option<u64>> = vec![None; edges.len()];
        for (i, entry) in self.entries.iter().enumerate() {
            let from = f
                .block_by_name(&entry.from)
                .ok_or_else(|| ProfileError::UnknownBlock {
                    label: entry.from.clone(),
                    entry: i,
                })?;
            f.block_by_name(&entry.to)
                .ok_or_else(|| ProfileError::UnknownBlock {
                    label: entry.to.clone(),
                    entry: i,
                })?;
            // Parallel edges (a branch with both targets equal) are matched
            // by repetition: each entry claims the first unclaimed edge for
            // its label pair, in successor order.
            let slot = edges
                .outgoing(from)
                .iter()
                .copied()
                .find(|&id| {
                    f.block(edges.edge(id).to).name == entry.to && weights[id.index()].is_none()
                })
                .ok_or_else(|| ProfileError::NoSuchEdge {
                    from: entry.from.clone(),
                    to: entry.to.clone(),
                    entry: i,
                })?;
            weights[slot.index()] = Some(entry.weight);
        }
        if let Some((_, e)) = edges.iter().find(|(id, _)| weights[id.index()].is_none()) {
            return Err(ProfileError::MissingEdge {
                from: f.block(e.from).name.clone(),
                to: f.block(e.to).name.clone(),
            });
        }
        let weights: Vec<u64> = weights.into_iter().map(|w| w.unwrap_or(0)).collect();

        for b in f.block_ids() {
            if b == f.entry() || b == f.exit() {
                continue;
            }
            let incoming: u64 = edges.incoming(b).iter().map(|id| weights[id.index()]).sum();
            let outgoing: u64 = edges.outgoing(b).iter().map(|id| weights[id.index()]).sum();
            if incoming != outgoing {
                let anchor = self
                    .entries
                    .iter()
                    .position(|e| e.from == f.block(b).name)
                    .unwrap_or(0);
                return Err(ProfileError::NotConserving {
                    block: f.block(b).name.clone(),
                    incoming,
                    outgoing,
                    entry: anchor,
                });
            }
        }
        Ok(weights)
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "profile {} {{", self.function)?;
        for e in &self.entries {
            writeln!(f, "  {} -> {} : {}", e.from, e.to, e.weight)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_function;

    fn diamond() -> Function {
        parse_function(
            "fn d {\nentry:\n  br c, l, r\nl:\n  jmp join\nr:\n  jmp join\njoin:\n  ret\n}",
        )
        .unwrap()
    }

    fn entry(from: &str, to: &str, weight: u64) -> ProfileEntry {
        ProfileEntry {
            from: from.into(),
            to: to.into(),
            weight,
        }
    }

    #[test]
    fn resolves_in_edge_order() {
        let f = diamond();
        let p = Profile {
            function: "d".into(),
            entries: vec![
                entry("r", "join", 3),
                entry("entry", "l", 7),
                entry("entry", "r", 3),
                entry("l", "join", 7),
            ],
        };
        // Dense edge order is block-major, successor-minor.
        assert_eq!(p.resolve(&f).unwrap(), vec![7, 3, 7, 3]);
    }

    #[test]
    fn round_trips_through_from_weights() {
        let f = diamond();
        let weights = vec![5, 2, 5, 2];
        let p = Profile::from_weights(&f, &weights);
        assert_eq!(p.resolve(&f).unwrap(), weights);
    }

    #[test]
    fn rejects_unconserved_flow() {
        let f = diamond();
        let p = Profile {
            function: "d".into(),
            entries: vec![
                entry("entry", "l", 7),
                entry("entry", "r", 3),
                entry("l", "join", 6), // enters l 7 times, leaves 6
                entry("r", "join", 3),
            ],
        };
        match p.resolve(&f).unwrap_err() {
            ProfileError::NotConserving {
                block,
                incoming,
                outgoing,
                entry,
            } => {
                assert_eq!(block, "l");
                assert_eq!((incoming, outgoing), (7, 6));
                assert_eq!(entry, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_missing_unknown_and_phantom_edges() {
        let f = diamond();
        let missing = Profile {
            function: "d".into(),
            entries: vec![entry("entry", "l", 1), entry("entry", "r", 0)],
        };
        assert!(matches!(
            missing.resolve(&f),
            Err(ProfileError::MissingEdge { .. })
        ));
        let unknown = Profile {
            function: "d".into(),
            entries: vec![entry("entry", "nowhere", 1)],
        };
        assert!(matches!(
            unknown.resolve(&f),
            Err(ProfileError::UnknownBlock { entry: 0, .. })
        ));
        let phantom = Profile {
            function: "d".into(),
            entries: vec![entry("l", "r", 1)],
        };
        assert!(matches!(
            phantom.resolve(&f),
            Err(ProfileError::NoSuchEdge { entry: 0, .. })
        ));
    }

    #[test]
    fn parallel_edges_match_by_repetition() {
        let f = parse_function("fn p {\nentry:\n  br c, exit, exit\nexit:\n  ret\n}").unwrap();
        let p = Profile {
            function: "p".into(),
            entries: vec![entry("entry", "exit", 4), entry("entry", "exit", 6)],
        };
        assert_eq!(p.resolve(&f).unwrap(), vec![4, 6]);
        // A third repetition has no edge left to claim.
        let over = Profile {
            function: "p".into(),
            entries: vec![
                entry("entry", "exit", 4),
                entry("entry", "exit", 6),
                entry("entry", "exit", 1),
            ],
        };
        assert!(matches!(
            over.resolve(&f),
            Err(ProfileError::NoSuchEdge { entry: 2, .. })
        ));
    }

    #[test]
    fn displays_as_a_profile_section() {
        let f = diamond();
        let p = Profile::from_weights(&f, &[7, 3, 7, 3]);
        let text = p.to_string();
        assert!(text.starts_with("profile d {\n"));
        assert!(text.contains("  entry -> l : 7\n"));
        assert!(text.ends_with('}'));
    }
}
