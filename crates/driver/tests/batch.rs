//! Batch-engine behaviour: determinism across thread counts, cache
//! semantics, and per-unit failure isolation.

use lcm_cfggen::GenOptions;
use lcm_core::validate::ValidationLevel;
use lcm_driver::{
    report, BatchEngine, BatchOptions, BatchUnit, CacheDisposition, FailureKind, UnitOutcome,
};
use lcm_ir::{parse_function, Module};

/// A generated many-function module, LCSE-normalised like the bench corpus.
fn corpus_module(count: usize, size: usize) -> Module {
    let mut m = Module::default();
    for (i, mut f) in lcm_cfggen::corpus(0xBE9C_0000 + size as u64, count, &GenOptions::sized(size))
        .into_iter()
        .enumerate()
    {
        lcm_core::passes::lcse(&mut f);
        f.name = format!("f{i}");
        m.push(f).unwrap();
    }
    m
}

fn options(jobs: usize, use_cache: bool) -> BatchOptions {
    BatchOptions {
        jobs,
        use_cache,
        ..BatchOptions::default()
    }
}

#[test]
fn output_is_byte_identical_for_every_thread_count() {
    let m = corpus_module(24, 120);
    for use_cache in [true, false] {
        let mut baseline: Option<(String, String, String)> = None;
        for jobs in [1, 4, 8] {
            let mut engine = BatchEngine::new(options(jobs, use_cache));
            let result = engine.run_module(&m);
            assert_eq!(result.totals.functions, 24);
            assert_eq!(result.totals.failed, 0);
            let rendered = (
                report::render_text(&result),
                report::render_stats(&result),
                report::render_json(&result),
            );
            match &baseline {
                None => baseline = Some(rendered),
                Some(b) => {
                    assert_eq!(
                        b.0, rendered.0,
                        "text differs at jobs={jobs} cache={use_cache}"
                    );
                    assert_eq!(
                        b.1, rendered.1,
                        "stats differ at jobs={jobs} cache={use_cache}"
                    );
                    assert_eq!(
                        b.2, rendered.2,
                        "json differs at jobs={jobs} cache={use_cache}"
                    );
                }
            }
        }
    }
}

#[test]
fn aggregated_totals_are_identical_for_every_thread_count() {
    let m = corpus_module(16, 200);
    let reference = BatchEngine::new(options(1, true)).run_module(&m).totals;
    for jobs in [2, 4, 8] {
        let totals = BatchEngine::new(options(jobs, true)).run_module(&m).totals;
        assert_eq!(totals, reference, "totals differ at jobs={jobs}");
    }
}

#[test]
fn cache_text_matches_uncached_text() {
    let m = corpus_module(12, 100);
    let cached = BatchEngine::new(options(4, true)).run_module(&m);
    let uncached = BatchEngine::new(options(4, false)).run_module(&m);
    assert_eq!(
        report::render_text(&cached),
        report::render_text(&uncached),
        "the cache must never change the output"
    );
}

#[test]
fn duplicate_bodies_are_optimized_once() {
    // Five copies of one body under different names: one leader computes,
    // the other four replay as hits, and each output keeps its own name.
    let body = "entry:\n  br c, l, r\nl:\n  x = a + b\n  jmp join\nr:\n  jmp join\njoin:\n  y = a + b\n  obs y\n  ret\n}";
    let mut m = Module::default();
    for name in ["v", "w", "x", "y", "z"] {
        m.push(parse_function(&format!("fn {name} {{\n{body}")).unwrap())
            .unwrap();
    }
    let mut engine = BatchEngine::new(options(4, true));
    let result = engine.run_module(&m);
    assert_eq!(result.totals.computed, 1);
    assert_eq!(result.totals.cache.hits, 4);
    assert_eq!(result.totals.cache.misses, 1);
    assert_eq!(result.units[0].cache, CacheDisposition::Computed);
    for unit in &result.units[1..] {
        assert_eq!(unit.cache, CacheDisposition::Hit);
    }
    for (unit, name) in result.units.iter().zip(["v", "w", "x", "y", "z"]) {
        let UnitOutcome::Ok(s) = &unit.outcome else {
            panic!("unit {name} failed");
        };
        assert!(
            s.output.starts_with(&format!("fn {name} {{")),
            "{}",
            s.output
        );
    }
}

#[test]
fn second_batch_is_served_from_cache_and_revalidated() {
    let m = corpus_module(6, 80);
    let mut engine = BatchEngine::new(options(2, true));
    let first = engine.run_module(&m);
    assert_eq!(first.totals.computed, 6);
    let second = engine.run_module(&m);
    assert_eq!(second.totals.computed, 0);
    assert_eq!(second.totals.cache.hits, 6);
    assert_eq!(report::render_text(&first), report::render_text(&second));
    // Hits re-validate at the fast tier, so checks were run.
    assert!(second.totals.validation_checks > 0);
}

#[test]
fn validation_off_skips_hit_revalidation() {
    let m = corpus_module(4, 60);
    let mut engine = BatchEngine::new(BatchOptions {
        validate: ValidationLevel::Off,
        ..options(2, true)
    });
    engine.run_module(&m);
    let second = engine.run_module(&m);
    assert_eq!(second.totals.validation_checks, 0);
    assert_eq!(second.totals.ok, 4);
}

#[test]
fn a_bad_function_fails_its_unit_not_the_batch() {
    // `island` is unreachable: the parser accepts it, the verifier does
    // not — so the unit must fail with InvalidInput while its neighbours
    // complete.
    let good = parse_function("fn good {\nentry:\n  x = a + b\n  obs x\n  ret\n}").unwrap();
    let bad = parse_function("fn bad {\nentry:\n  ret\nisland:\n  jmp island\n}").unwrap();
    let also_good =
        parse_function("fn also_good {\nentry:\n  y = a * b\n  obs y\n  ret\n}").unwrap();
    let units = [good, bad, also_good]
        .into_iter()
        .map(|function| BatchUnit {
            file: None,
            profile: None,
            function,
        })
        .collect();
    let mut engine = BatchEngine::new(options(4, true));
    let result = engine.run(units);
    assert_eq!(result.totals.ok, 2);
    assert_eq!(result.totals.failed, 1);
    let UnitOutcome::Failed(e) = &result.units[1].outcome else {
        panic!("bad unit should fail");
    };
    assert_eq!(e.kind, FailureKind::InvalidInput);
    assert!(matches!(result.units[0].outcome, UnitOutcome::Ok(_)));
    assert!(matches!(result.units[2].outcome, UnitOutcome::Ok(_)));
    // The failure renders as a comment line, not as output text.
    let text = report::render_text(&result);
    assert!(text.contains("# fn bad: FAILED (invalid-input)"), "{text}");
}

#[test]
fn eviction_sequence_is_deterministic() {
    let fns: Vec<_> = (0..3)
        .map(|i| {
            parse_function(&format!(
                "fn f{i} {{\nentry:\n  x = a + {i}\n  obs x\n  ret\n}}"
            ))
            .unwrap()
        })
        .collect();
    let mut m = Module::default();
    for f in &fns {
        m.push(f.clone()).unwrap();
    }
    let run = |jobs: usize| {
        let mut engine = BatchEngine::new(BatchOptions {
            cache_capacity: 1,
            ..options(jobs, true)
        });
        let first = engine.run_module(&m).totals;
        let second = engine.run_module(&m).totals;
        (first, second)
    };
    let (f1, s1) = run(1);
    for jobs in [4, 8] {
        assert_eq!(
            run(jobs),
            (f1, s1),
            "eviction counters differ at jobs={jobs}"
        );
    }
    // Capacity 1 over 3 distinct functions: the first batch evicts twice
    // and leaves only the last entry, so the second batch hits exactly
    // once and recomputes the other two (evicting twice more).
    assert_eq!(f1.cache.evictions, 2);
    assert_eq!(s1.cache.hits, 1);
    assert_eq!(s1.computed, 2);
    assert_eq!(s1.cache.evictions, 4);
}

#[test]
fn run_and_run_module_agree() {
    let m = corpus_module(5, 90);
    let by_module = BatchEngine::new(options(2, true)).run_module(&m);
    let by_units = BatchEngine::new(options(2, true)).run(
        m.iter()
            .map(|f| BatchUnit {
                file: None,
                profile: None,
                function: f.clone(),
            })
            .collect(),
    );
    assert_eq!(
        report::render_text(&by_module),
        report::render_text(&by_units)
    );
    assert_eq!(by_module.totals, by_units.totals);
}

#[test]
fn reused_scratch_makes_pipeline_allocations_o1_amortized() {
    // Drives the worker loop the way the batch engine does — one
    // `SolverScratch` per worker, `lcm_in` per function — and counts real
    // allocation events. The batch report scrubs these counters (they
    // measure scratch temperature, not the function), so this is the test
    // that pins the O(1)-amortized guarantee itself.
    use lcm_core::lcm_in;
    use lcm_dataflow::SolverScratch;

    let m = corpus_module(64, 24);
    let fns: Vec<_> = m.functions().iter().collect();
    let per_fn = lcm_driver::pool::run_indexed_with(1, fns.len(), SolverScratch::new, |s, i| {
        let p = lcm_in(fns[i], s).unwrap();
        p.stats.total().allocations
    });

    // A warm same-shape solve allocates exactly twice (the two exported
    // Solution matrices): 6 per three-solve pipeline. Cold and growing
    // solves pay extra, but growth events are bounded by the corpus's
    // maximum shape, so the total stays O(1) amortized per function.
    let floor = 6 * fns.len() as u64;
    let total: u64 = per_fn.iter().sum();
    assert!(per_fn[0] > 6, "first function should pay the cold cost");
    assert!(
        total < floor + 64,
        "allocations not O(1) amortized: {total} for {} functions",
        fns.len()
    );
    // Once the scratch has seen the largest shape, same-or-smaller shapes
    // still trigger per-solve value re-initialisation but no growth.
    let warm_exact = per_fn.iter().filter(|&&a| a == 6).count();
    assert!(
        warm_exact * 2 >= fns.len(),
        "expected mostly warm solves, got {warm_exact}/{} at the 6-allocation floor",
        fns.len()
    );
}
