//! `lcmopt serve` — the long-running optimization daemon.
//!
//! A [`Daemon`] owns a pool of persistent worker threads, each keeping one
//! warm [`SolverScratch`] arena across requests (the whole point of
//! serving: the 2-allocation same-shape solve floor only pays off if the
//! process outlives a CLI invocation), a shared [`BatchEngine`]'s plan
//! cache — optionally backed by an `lcm-cache-v1` file (see
//! [`crate::persist`]) — and a bounded admission queue.
//!
//! The robustness contract, each clause pinned by tests:
//!
//! * **No head-of-line blocking** — a request's units stream back as
//!   `UNIT_OK`/`UNIT_ERR` frames in completion order, each tagged with
//!   its unit index, terminated by one `DONE`.
//! * **Watchdogs** — every request carries a deadline/fuel budget
//!   ([`OptimizeBudget`]); a unit that exceeds it is answered with a
//!   distinct `cancelled` error frame while its siblings and the
//!   connection live on. A client that disconnects mid-request trips the
//!   request's cancel flag, so its remaining units stop consuming workers.
//! * **Admission control** — when the queued-unit count would exceed the
//!   bound, the request is shed with `OVERLOADED` plus a retry-after
//!   hint; nothing is partially admitted.
//! * **Graceful drain** — a `SHUTDOWN` frame (or EOF on stdio) stops
//!   admissions, finishes in-flight units, durably flushes the cache, and
//!   exits 0. The cache is also flushed after every request (write-behind),
//!   so even a `kill -9` loses at most the in-flight request's entries —
//!   and the atomic temp-then-rename write means it never leaves a torn
//!   file.
//! * **Panic backstop** — unit pipelines already run under
//!   `catch_unwind` (a panic is a typed per-unit failure); the worker
//!   loop carries a second, outer backstop that counts into
//!   [`Daemon::panics_contained`]. Tests assert the counter stays 0.
//!
//! Connection handling is generic over `Read + Write`, so the full
//! protocol surface is testable in-process with byte buffers; the Unix
//! socket and stdio fronts are thin wrappers.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lcm_core::{EdgeWeights, OptimizeBudget, PreAlgorithm};
use lcm_dataflow::SolverScratch;
use lcm_ir::{verify, Function};

use crate::protocol::{
    self, decode_request, read_frame, write_response, FrameError, Request, Response, ERR_BAD_FRAME,
    ERR_DRAINING, ERR_PARSE, ERR_TOO_LARGE,
};
use crate::{
    cache, fingerprint_with_context, incremental_eligible, isolate, optimize_unit,
    optimize_unit_incremental, options_tag, resolve_jobs, unit_context, BatchEngine, BatchOptions,
    CacheEntry, FailureKind, LoadStatus, PrevSolve, UnitError,
};

use std::panic::{catch_unwind, AssertUnwindSafe};

/// How a daemon is configured.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// The per-unit pipeline configuration (placement, validation, seed,
    /// cache capacity…). `batch.jobs` is ignored; see `workers`.
    pub batch: BatchOptions,
    /// Worker threads; `0` means [`std::thread::available_parallelism`].
    pub workers: usize,
    /// Admission bound: the maximum number of units queued (not yet
    /// finished) across all requests; `0` means unbounded. A request whose
    /// units would overflow the bound is shed whole.
    pub queue_capacity: usize,
    /// The back-off hint sent with `OVERLOADED` responses, in ms.
    pub retry_after_ms: u32,
    /// Back the plan cache with this `lcm-cache-v1` file.
    pub cache_file: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            batch: BatchOptions::default(),
            workers: 0,
            queue_capacity: 1024,
            retry_after_ms: 50,
            cache_file: None,
        }
    }
}

/// How a connection ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConnectionEnd {
    /// The client closed (EOF between frames) or the transport tore; the
    /// daemon keeps serving other connections.
    Closed,
    /// The client sent `SHUTDOWN`: the daemon should drain and exit.
    Shutdown,
}

/// One admitted unit of work.
struct UnitJob {
    index: u32,
    name: String,
    function: Function,
    weights: Option<EdgeWeights>,
    context: String,
    deadline: Option<Instant>,
    fuel: u64,
    cancel: Arc<AtomicBool>,
    tx: mpsc::Sender<Response>,
}

/// The admission queue.
#[derive(Default)]
struct Queue {
    jobs: VecDeque<UnitJob>,
    /// Units admitted but not yet finished (queued + in flight) — the
    /// quantity admission control bounds.
    outstanding: usize,
    /// Workers should exit once the queue is empty.
    stop: bool,
}

/// Shared daemon state.
struct Core {
    opts: ServeOptions,
    queue: Mutex<Queue>,
    work_ready: Condvar,
    engine: Mutex<BatchEngine>,
    /// No new admissions; accept loops should wind down.
    draining: AtomicBool,
    /// Requests answered (including failed units), shed, and the outer
    /// worker-loop panic backstop (expected to stay 0 forever).
    requests_served: AtomicU64,
    requests_shed: AtomicU64,
    panics: AtomicU64,
}

impl Core {
    /// Pops a job, blocking until one arrives or `stop` is set with the
    /// queue empty.
    fn next_job(&self) -> Option<UnitJob> {
        let mut q = self.queue.lock().expect("queue lock");
        loop {
            if let Some(job) = q.jobs.pop_front() {
                return Some(job);
            }
            if q.stop {
                return None;
            }
            q = self.work_ready.wait(q).expect("queue lock");
        }
    }

    /// Marks one admitted unit finished.
    fn finish_unit(&self) {
        let mut q = self.queue.lock().expect("queue lock");
        q.outstanding = q.outstanding.saturating_sub(1);
    }

    /// Durably writes the cache back to its file, if one backs it.
    fn flush_cache(&self) {
        let engine = self.engine.lock().expect("engine lock");
        if let Err(e) = engine.flush_cache_file() {
            eprintln!("lcmopt serve: cache flush failed: {e}");
        }
    }

    fn stats_text(&self) -> String {
        let (q_outstanding, q_stop) = {
            let q = self.queue.lock().expect("queue lock");
            (q.outstanding, q.stop)
        };
        let engine = self.engine.lock().expect("engine lock");
        let s = engine.cache().stats();
        let mut out = format!(
            "daemon: {} served, {} shed, {} outstanding{}\n",
            self.requests_served.load(Ordering::Relaxed),
            self.requests_shed.load(Ordering::Relaxed),
            q_outstanding,
            if q_stop { " (stopping)" } else { "" },
        );
        out.push_str(&format!("cache: {s}, {} entries\n", engine.cache().len()));
        let (inc_hits, delta_blocks) = engine.incremental_session();
        out.push_str(&format!(
            "incremental: {inc_hits} hits, {delta_blocks} delta blocks resolved, {} states retained\n",
            engine.prev_solves_len()
        ));
        out.push_str(&format!("edit classes: {}\n", engine.edit_classes()));
        if let Some(l) = engine.lifetime() {
            out.push_str(&format!("lifetime: {l}\n"));
        }
        out.push_str(&format!(
            "panics-contained: {}\n",
            self.panics.load(Ordering::Relaxed)
        ));
        out
    }
}

/// The optimization daemon. See the module docs for the contract.
pub struct Daemon {
    core: Arc<Core>,
    workers: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Starts the worker pool. When `opts.cache_file` is set, the file is
    /// loaded (or quarantined — see [`crate::load_or_quarantine`]) before
    /// the first worker spawns; check [`Daemon::load_status`].
    pub fn start(opts: ServeOptions) -> Daemon {
        let engine = match &opts.cache_file {
            Some(path) => BatchEngine::with_cache_file(opts.batch, path),
            None => BatchEngine::new(opts.batch),
        };
        let workers = resolve_jobs(opts.workers);
        let core = Arc::new(Core {
            opts,
            queue: Mutex::new(Queue::default()),
            work_ready: Condvar::new(),
            engine: Mutex::new(engine),
            draining: AtomicBool::new(false),
            requests_served: AtomicU64::new(0),
            requests_shed: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|_| {
                let core = Arc::clone(&core);
                std::thread::spawn(move || worker_loop(&core))
            })
            .collect();
        Daemon {
            core,
            workers: handles,
        }
    }

    /// How the backing cache file loaded; `None` without a cache file.
    pub fn load_status(&self) -> Option<LoadStatus> {
        self.core
            .engine
            .lock()
            .expect("engine lock")
            .load_status()
            .cloned()
    }

    /// The outer worker-loop panic backstop counter. The per-unit
    /// `catch_unwind` isolation should make this impossible to increment;
    /// tests assert it stays 0 under protocol hostility.
    pub fn panics_contained(&self) -> u64 {
        self.core.panics.load(Ordering::Relaxed)
    }

    /// Serves one connection to completion. Generic over the transport so
    /// tests can drive the daemon with in-memory buffers.
    pub fn handle_connection(&self, r: &mut impl Read, w: &mut impl Write) -> ConnectionEnd {
        serve_connection(&self.core, r, w)
    }

    /// Serves a single connection over stdin/stdout, then drains: EOF (or
    /// `SHUTDOWN`) finishes in-flight units, flushes the cache durably,
    /// and returns.
    ///
    /// # Errors
    ///
    /// Propagates cache-flush I/O errors from the final drain.
    pub fn serve_stdio(self) -> io::Result<()> {
        let stdin = io::stdin();
        let stdout = io::stdout();
        self.handle_connection(&mut stdin.lock(), &mut stdout.lock());
        self.shutdown()
    }

    /// Binds `path` and serves connections (one thread each) until a
    /// client sends `SHUTDOWN`, then drains, flushes, and removes the
    /// socket file.
    ///
    /// # Errors
    ///
    /// Binding errors, and cache-flush I/O errors from the final drain.
    #[cfg(unix)]
    pub fn serve_unix(self, path: &Path) -> io::Result<()> {
        use std::os::unix::net::UnixListener;

        // A dead daemon's socket file would make rebinding fail forever.
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        while !self.core.draining.load(Ordering::Relaxed) {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let core = Arc::clone(&self.core);
                    conns.push(std::thread::spawn(move || {
                        let mut reader = match stream.try_clone() {
                            Ok(r) => r,
                            Err(_) => return,
                        };
                        let mut writer = stream;
                        serve_connection(&core, &mut reader, &mut writer);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => {
                    eprintln!("lcmopt serve: accept failed: {e}");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
            conns.retain(|h| !h.is_finished());
        }
        for h in conns {
            let _ = h.join();
        }
        let result = self.shutdown();
        let _ = std::fs::remove_file(path);
        result
    }

    /// Drains and stops the daemon: finishes every queued unit, joins the
    /// workers, and durably flushes the cache.
    ///
    /// # Errors
    ///
    /// The final cache flush's I/O error, if any.
    pub fn shutdown(self) -> io::Result<()> {
        self.core.draining.store(true, Ordering::Relaxed);
        {
            let mut q = self.core.queue.lock().expect("queue lock");
            q.stop = true;
        }
        self.core.work_ready.notify_all();
        for h in self.workers {
            let _ = h.join();
        }
        let engine = self.core.engine.lock().expect("engine lock");
        engine.flush_cache_file()
    }
}

/// The worker loop: one warm scratch arena, jobs until stop.
fn worker_loop(core: &Arc<Core>) {
    let mut scratch = SolverScratch::new();
    while let Some(job) = core.next_job() {
        // The unit pipeline has its own catch_unwind isolation; this outer
        // backstop only exists so a panic in the *loop* machinery can
        // never kill a worker silently. Tests pin it to 0.
        let index = job.index;
        let name = job.name.clone();
        let tx = job.tx.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| process_job(core, &mut scratch, job)));
        let response = outcome.unwrap_or_else(|_| {
            core.panics.fetch_add(1, Ordering::Relaxed);
            unit_err_response(
                index,
                &name,
                &UnitError {
                    kind: FailureKind::Panic,
                    message: "worker backstop: panic outside unit isolation".into(),
                },
            )
        });
        core.finish_unit();
        // A dead receiver means the connection is gone; nothing to do.
        let _ = tx.send(response);
    }
}

/// Optimizes one unit: budget check, cache lookup (with re-validation),
/// compute on miss, cache fill.
fn process_job(core: &Arc<Core>, scratch: &mut SolverScratch, job: UnitJob) -> Response {
    if job.cancel.load(Ordering::Relaxed) {
        return unit_err_response(
            job.index,
            &job.name,
            &UnitError {
                kind: FailureKind::Cancelled,
                message: "request abandoned before the unit started".into(),
            },
        );
    }
    if let Err(e) = verify(&job.function) {
        return unit_err_response(
            job.index,
            &job.name,
            &UnitError {
                kind: FailureKind::InvalidInput,
                message: e.to_string(),
            },
        );
    }

    let mut budget = OptimizeBudget::unlimited().with_cancel_flag(Arc::clone(&job.cancel));
    if let Some(deadline) = job.deadline {
        budget = budget.with_deadline(deadline);
    }
    if job.fuel > 0 {
        budget = budget.with_fuel(job.fuel);
    }

    let opts = core.opts.batch;
    let incremental = incremental_eligible(opts.placement, job.weights.as_ref())
        && job.deadline.is_none()
        && job.fuel == 0;

    // The zero-dirty memo: an identical revision of a function we hold
    // retained state for replays the memoized output verbatim — checked
    // *before* the plan cache because the memo was validated when it was
    // produced in this very process, so a hit skips even re-validation.
    // Any edit changes the fingerprint and any option change breaks the
    // tag, so a dirty function can never match.
    let mut fp: Option<(u128, String)> = None;
    if incremental {
        let (key, text) = fingerprint_with_context(&job.function, &job.context);
        let tag = options_tag(&opts);
        let mut engine = core.engine.lock().expect("engine lock");
        if let Some(p) = engine.take_prev_solve(&job.name) {
            if p.key == key && p.opts_tag == tag {
                let output = cache::with_name(&p.output_text, &job.name);
                engine.note_zero_dirty();
                engine.put_prev_solve(&job.name, p);
                return Response::UnitOk {
                    index: job.index,
                    output,
                };
            }
            engine.put_prev_solve(&job.name, p);
        }
        fp = Some((key, text));
    }

    let cached: Option<(u128, String, Option<CacheEntry>)> = if opts.use_cache {
        let (key, text) = fp
            .take()
            .unwrap_or_else(|| fingerprint_with_context(&job.function, &job.context));
        let mut engine = core.engine.lock().expect("engine lock");
        let entry = engine.cache().get(key, &text).cloned();
        if entry.is_some() {
            engine.cache_mut().note_hit();
        } else {
            engine.cache_mut().note_miss();
        }
        Some((key, text, entry))
    } else {
        None
    };

    if let Some((key, _, Some(entry))) = &cached {
        let is_thin = entry.origin.is_none();
        match isolate(AssertUnwindSafe(|| {
            crate::revalidate_entry(entry, opts.seed)
        })) {
            Ok(_) => {
                return Response::UnitOk {
                    index: job.index,
                    output: cache::with_name(&entry.output_text, &job.name),
                };
            }
            Err(e) if is_thin => {
                // A persisted entry that fails re-validation is quarantined
                // (evicted + counted) and the unit recomputed from scratch:
                // disk corruption must cost warmth, not correctness — and
                // not availability either.
                let mut engine = core.engine.lock().expect("engine lock");
                engine.cache_mut().remove(*key);
                engine.note_entry_quarantine();
                drop(engine);
                let _ = e;
            }
            Err(e) => {
                // An entry poisoned *in this process* is a real fault; the
                // batch engine reports it the same way.
                return unit_err_response(job.index, &job.name, &e);
            }
        }
    }

    // The incremental hot path: for un-budgeted plain-LCM units, reuse the
    // fixpoints retained from this function's previous revision and charge
    // only for the blocks the edit can reach. Budgeted units keep the
    // budget-enforcing pipeline; output text is bit-identical either way
    // (pinned by `tests/incremental.rs` and the serve smoke in ci.sh).
    if incremental {
        let key = match (&cached, &fp) {
            (Some((key, _, _)), _) => *key,
            (None, Some((key, _))) => *key,
            (None, None) => fingerprint_with_context(&job.function, &job.context).0,
        };
        let prev = {
            let mut engine = core.engine.lock().expect("engine lock");
            engine.take_prev_solve(&job.name)
        };
        let had_prev = prev.is_some();
        let computed = isolate(AssertUnwindSafe(|| {
            optimize_unit_incremental(
                &job.function,
                &opts,
                &job.context,
                prev.as_ref().map(|p| &p.state),
                scratch,
            )
        }));
        return match computed {
            Ok((entry, state, stats, phases)) => {
                let output = cache::with_name(&entry.output_text, &job.name);
                let mut engine = core.engine.lock().expect("engine lock");
                if had_prev && !stats.full_fallback {
                    engine.note_incremental_hit(stats.delta_blocks_resolved as u64);
                }
                if had_prev {
                    engine.note_edit_class(&stats);
                }
                engine.note_phases(phases);
                engine.put_prev_solve(
                    &job.name,
                    PrevSolve {
                        key,
                        state,
                        output_text: entry.output_text.clone(),
                        opts_tag: options_tag(&opts),
                    },
                );
                if cached.is_some() {
                    engine.cache_mut().insert(key, entry);
                }
                Response::UnitOk {
                    index: job.index,
                    output,
                }
            }
            Err(e) => unit_err_response(job.index, &job.name, &e),
        };
    }

    let computed = isolate(AssertUnwindSafe(|| {
        optimize_unit(
            &job.function,
            &opts,
            job.weights.as_ref(),
            &job.context,
            scratch,
            &budget,
        )
    }));
    match computed {
        Ok(entry) => {
            let output = cache::with_name(&entry.output_text, &job.name);
            if let Some((key, _, _)) = &cached {
                let mut engine = core.engine.lock().expect("engine lock");
                engine.cache_mut().insert(*key, entry);
            }
            Response::UnitOk {
                index: job.index,
                output,
            }
        }
        Err(e) => unit_err_response(job.index, &job.name, &e),
    }
}

fn unit_err_response(index: u32, name: &str, e: &UnitError) -> Response {
    Response::UnitErr {
        index,
        code: protocol::failure_code(e.kind),
        name: name.to_string(),
        message: e.message.clone(),
    }
}

/// Serves one connection: frames in, frames out, until EOF, `SHUTDOWN`,
/// or an unrecoverable transport fault. Decode-level hostility (unknown
/// tags, malformed payloads) is answered with a typed `ERROR` frame and
/// the connection lives on — framing is length-prefixed, so one bad frame
/// does not desynchronise the stream. Framing-level hostility (oversized
/// or zero length prefixes, torn frames) is answered with a best-effort
/// `ERROR` frame and a close, because the byte stream can no longer be
/// trusted.
fn serve_connection(core: &Arc<Core>, r: &mut impl Read, w: &mut impl Write) -> ConnectionEnd {
    loop {
        let (tag, payload) = match read_frame(r) {
            Ok(Some(frame)) => frame,
            Ok(None) => return ConnectionEnd::Closed,
            Err(e) => {
                let code = match e {
                    FrameError::TooLarge { .. } => ERR_TOO_LARGE,
                    _ => ERR_BAD_FRAME,
                };
                let _ = write_response(
                    w,
                    &Response::Error {
                        code,
                        message: e.to_string(),
                    },
                );
                return ConnectionEnd::Closed;
            }
        };
        let request = match decode_request(tag, &payload) {
            Ok(req) => req,
            Err(e) => {
                if write_response(
                    w,
                    &Response::Error {
                        code: ERR_BAD_FRAME,
                        message: e.to_string(),
                    },
                )
                .is_err()
                {
                    return ConnectionEnd::Closed;
                }
                continue;
            }
        };
        match request {
            Request::Stats => {
                if write_response(
                    w,
                    &Response::Stats {
                        text: core.stats_text(),
                    },
                )
                .is_err()
                {
                    return ConnectionEnd::Closed;
                }
            }
            Request::Shutdown => {
                core.draining.store(true, Ordering::Relaxed);
                let _ = write_response(w, &Response::Bye);
                return ConnectionEnd::Shutdown;
            }
            Request::Optimize {
                deadline_ms,
                fuel,
                module,
            } => {
                if handle_optimize(core, w, deadline_ms, fuel, &module).is_err() {
                    return ConnectionEnd::Closed;
                }
            }
        }
    }
}

/// Admits, runs, and streams one optimize request. `Err(())` means the
/// transport died and the connection should close.
fn handle_optimize(
    core: &Arc<Core>,
    w: &mut impl Write,
    deadline_ms: u32,
    fuel: u64,
    module: &str,
) -> Result<(), ()> {
    fn send(w: &mut impl Write, resp: &Response) -> Result<(), ()> {
        write_response(w, resp).map_err(|_| ())
    }

    if core.draining.load(Ordering::Relaxed) {
        return send(
            w,
            &Response::Error {
                code: ERR_DRAINING,
                message: "daemon is draining; no new work admitted".into(),
            },
        );
    }
    let parsed = match lcm_ir::parse_module(module) {
        Ok(m) => m,
        Err(e) => {
            return send(
                w,
                &Response::Error {
                    code: ERR_PARSE,
                    message: format!("<request>:{}:{}: {}", e.line, e.col, e.message),
                },
            );
        }
    };
    let functions: Vec<Function> = parsed.iter().cloned().collect();
    let n = functions.len();

    // Resolve profiles exactly as the batch engine does, so a daemon
    // answer is the batch answer.
    let weights: Vec<Option<EdgeWeights>> = functions
        .iter()
        .map(|f| {
            if core.opts.batch.placement == PreAlgorithm::Speculative {
                parsed
                    .profile(&f.name)
                    .and_then(|p| EdgeWeights::from_profile(f, p).ok())
            } else {
                None
            }
        })
        .collect();

    // Admission: all units or none.
    let (tx, rx) = mpsc::channel::<Response>();
    let cancel = Arc::new(AtomicBool::new(false));
    let deadline =
        (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(u64::from(deadline_ms)));
    {
        let mut q = core.queue.lock().expect("queue lock");
        let cap = core.opts.queue_capacity;
        if cap > 0 && q.outstanding + n > cap {
            drop(q);
            core.requests_shed.fetch_add(1, Ordering::Relaxed);
            return send(
                w,
                &Response::Overloaded {
                    retry_after_ms: core.opts.retry_after_ms,
                },
            );
        }
        q.outstanding += n;
        for (i, f) in functions.into_iter().enumerate() {
            let context = unit_context(core.opts.batch.placement, weights[i].as_ref());
            q.jobs.push_back(UnitJob {
                index: i as u32,
                name: f.name.clone(),
                function: f,
                weights: weights[i].clone(),
                context,
                deadline,
                fuel,
                cancel: Arc::clone(&cancel),
                tx: tx.clone(),
            });
        }
    }
    core.work_ready.notify_all();
    drop(tx);

    // Stream unit results in completion order. If the client hangs up,
    // cancel the request's remaining units and keep draining the channel
    // so the workers never block.
    let mut ok = 0u32;
    let mut failed = 0u32;
    let mut client_gone = false;
    for _ in 0..n {
        let Ok(resp) = rx.recv() else {
            break;
        };
        match &resp {
            Response::UnitOk { .. } => ok += 1,
            _ => failed += 1,
        }
        if !client_gone && send(w, &resp).is_err() {
            client_gone = true;
            cancel.store(true, Ordering::Relaxed);
        }
    }
    core.requests_served.fetch_add(1, Ordering::Relaxed);
    // Write-behind durability: every completed request leaves the cache
    // file current, so even SIGKILL loses only in-flight work.
    core.flush_cache();
    if client_gone {
        return Err(());
    }
    send(w, &Response::Done { ok, failed })
}
