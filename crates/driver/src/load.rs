//! Batch input loading: one `.lcm` module file, or a directory of them.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use lcm_ir::ParseError;

use crate::BatchUnit;

/// Why batch input could not be loaded.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LoadError {
    /// The path could not be read.
    Io {
        /// The offending path.
        path: String,
        /// The OS error text.
        message: String,
    },
    /// A directory contained no `.lcm` files.
    NoInputs {
        /// The directory.
        path: String,
    },
    /// A file failed to parse.
    Parse {
        /// The file.
        path: String,
        /// The parse error, with file-relative line and column.
        error: ParseError,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io { path, message } => write!(f, "{path}: {message}"),
            LoadError::NoInputs { path } => write!(f, "{path}: no .lcm files"),
            LoadError::Parse { path, error } => write!(f, "{path}: {error}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Loads the batch units under `path`: the functions of a single module
/// file, or of every `.lcm` file in a directory (sorted by path, so the
/// batch order — and therefore the output — is deterministic). Each unit
/// records the file it came from.
///
/// # Errors
///
/// [`LoadError::Io`] if the path is unreadable, [`LoadError::NoInputs`] if
/// a directory holds no `.lcm` files, [`LoadError::Parse`] on the first
/// file that fails to parse.
pub fn load_units(path: &Path) -> Result<Vec<BatchUnit>, LoadError> {
    let io_err = |e: std::io::Error, p: &Path| LoadError::Io {
        path: p.display().to_string(),
        message: e.to_string(),
    };
    let meta = fs::metadata(path).map_err(|e| io_err(e, path))?;
    let files: Vec<PathBuf> = if meta.is_dir() {
        let mut files: Vec<PathBuf> = fs::read_dir(path)
            .map_err(|e| io_err(e, path))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "lcm"))
            .collect();
        if files.is_empty() {
            return Err(LoadError::NoInputs {
                path: path.display().to_string(),
            });
        }
        files.sort();
        files
    } else {
        vec![path.to_path_buf()]
    };

    let mut units = Vec::new();
    for file in files {
        let bytes = fs::read(&file).map_err(|e| io_err(e, &file))?;
        let text = text_from_bytes(bytes).map_err(|error| LoadError::Parse {
            path: file.display().to_string(),
            error,
        })?;
        let module = lcm_ir::parse_module(&text).map_err(|error| LoadError::Parse {
            path: file.display().to_string(),
            error,
        })?;
        for f in module.iter() {
            units.push(BatchUnit {
                file: Some(file.display().to_string()),
                profile: module.profile(&f.name).cloned(),
                function: f.clone(),
            });
        }
    }
    Ok(units)
}

/// Decodes raw input bytes as UTF-8, reporting an invalid sequence as a
/// **spanned** [`ParseError`] at the first offending byte — so a binary
/// file (or stream) gets the same `file:line:col` diagnostic and exit
/// code as any other malformed input, for files and stdin alike.
///
/// # Errors
///
/// A [`ParseError`] whose line/column point at the first invalid byte.
pub fn text_from_bytes(bytes: Vec<u8>) -> Result<String, ParseError> {
    String::from_utf8(bytes).map_err(|e| {
        let valid = e.utf8_error().valid_up_to();
        let prefix = &e.as_bytes()[..valid];
        let line = prefix.iter().filter(|&&b| b == b'\n').count() + 1;
        let col = valid
            - prefix
                .iter()
                .rposition(|&b| b == b'\n')
                .map_or(0, |p| p + 1)
            + 1;
        let byte = e.as_bytes()[valid];
        ParseError {
            line,
            col,
            message: format!("input is not valid UTF-8 (byte 0x{byte:02x})"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_utf8_passes_through() {
        assert_eq!(
            text_from_bytes(b"fn a {}".to_vec()).unwrap(),
            "fn a {}".to_string()
        );
    }

    #[test]
    fn invalid_utf8_is_a_spanned_parse_error() {
        // Two clean lines, then a stray 0xFF three bytes into line 3.
        let e = text_from_bytes(b"fn a {\nentry:\n  \xff ret\n}".to_vec()).unwrap_err();
        assert_eq!((e.line, e.col), (3, 3));
        assert!(e.message.contains("0xff"), "{}", e.message);
        // And at the very first byte.
        let e = text_from_bytes(vec![0xC0]).unwrap_err();
        assert_eq!((e.line, e.col), (1, 1));
    }
}
