//! Deterministic renderings of a [`BatchResult`](crate::BatchResult).
//!
//! Everything emitted here is a pure function of the batch result, which
//! is itself independent of the thread count — so `lcmopt batch` output
//! can be diffed across `--jobs` values (ci.sh does exactly that). No
//! wall-clock numbers appear in any of these formats; timing goes to
//! stderr, where nondeterminism belongs.

use std::fmt::Write as _;

use crate::{BatchResult, IncrementalUnit, UnitOutcome};

/// The optimized module text: each successful unit's printed function in
/// input order, failures as `#`-comment lines, separated by blank lines.
/// The result is a valid module again whenever every unit succeeded (and
/// no two units share a name).
pub fn render_text(result: &BatchResult) -> String {
    let mut out = String::new();
    for (i, unit) in result.units.iter().enumerate() {
        if i > 0 {
            out.push_str("\n\n");
        }
        match &unit.outcome {
            UnitOutcome::Ok(s) => out.push_str(&s.output),
            UnitOutcome::Failed(e) => {
                let _ = write!(
                    out,
                    "# fn {}: FAILED ({}): {}",
                    unit.name,
                    e.kind.name(),
                    one_line(&e.message)
                );
            }
        }
    }
    out.push('\n');
    out
}

/// [`render_text`] for the incremental runner's outcomes
/// ([`BatchEngine::run_module_incremental`](crate::BatchEngine::run_module_incremental)):
/// the same shape byte for byte, so `lcmopt watch` output diffs cleanly
/// against a one-shot `lcmopt batch` on the same module.
pub fn render_incremental_text(units: &[IncrementalUnit]) -> String {
    let mut out = String::new();
    for (i, unit) in units.iter().enumerate() {
        if i > 0 {
            out.push_str("\n\n");
        }
        match &unit.outcome {
            Ok(s) => out.push_str(s),
            Err(e) => {
                let _ = write!(
                    out,
                    "# fn {}: FAILED ({}): {}",
                    unit.name,
                    e.kind.name(),
                    one_line(&e.message)
                );
            }
        }
    }
    out.push('\n');
    out
}

/// The aggregate tables: batch counts, the merged solver statistics (same
/// table as `lcmopt --emit stats`), rewrite counters, validator counters
/// and cache counters.
pub fn render_stats(result: &BatchResult) -> String {
    let t = &result.totals;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "batch: {} functions ({} ok, {} failed), {} computed",
        t.functions, t.ok, t.failed, t.computed
    );
    out.push_str(&lcm_core::report::stats_table(&t.pipeline));
    let _ = writeln!(
        out,
        "transform: {} insertions, {} deletions, {} retained defs, {} edges split, {} temps",
        t.transform.insertions,
        t.transform.deletions,
        t.transform.retained_defs,
        t.transform.edges_split,
        t.transform.temps
    );
    if t.spec.candidates > 0 {
        let _ = writeln!(
            out,
            "speculative: {} candidates, {} speculated, weighted cost {} -> {}",
            t.spec.candidates,
            t.spec.speculated,
            t.spec.lcm_weighted_cost,
            t.spec.spec_weighted_cost
        );
    }
    let _ = writeln!(
        out,
        "validation: {} checks, {} inputs sampled",
        t.validation_checks, t.inputs_sampled
    );
    let _ = writeln!(out, "cache: {}, {} entries", t.cache, t.cache_entries);
    if let Some(l) = t.lifetime {
        let _ = writeln!(out, "lifetime: {l}");
    }
    out
}

/// A machine-readable rendering: one object per unit plus the totals.
/// Hand-rolled (the workspace is dependency-free); keys are emitted in a
/// fixed order so the output is byte-stable.
pub fn render_json(result: &BatchResult) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"functions\": [\n");
    for (i, unit) in result.units.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(out, "\"name\": \"{}\"", esc(&unit.name));
        match &unit.file {
            Some(file) => {
                let _ = write!(out, ", \"file\": \"{}\"", esc(file));
            }
            None => out.push_str(", \"file\": null"),
        }
        let _ = write!(out, ", \"cache\": \"{}\"", unit.cache.name());
        match &unit.outcome {
            UnitOutcome::Ok(s) => {
                let total = s.pipeline.total();
                let _ = write!(
                    out,
                    ", \"status\": \"ok\", \"insertions\": {}, \"deletions\": {}, \
                     \"retained_defs\": {}, \"edges_split\": {}, \"temps\": {}, \
                     \"node_visits\": {}, \"word_ops\": {}, \"validation_checks\": {}, \
                     \"inputs_sampled\": {}",
                    s.transform.insertions,
                    s.transform.deletions,
                    s.transform.retained_defs,
                    s.transform.edges_split,
                    s.transform.temps,
                    total.node_visits,
                    total.word_ops,
                    s.validation_checks,
                    s.inputs_sampled
                );
            }
            UnitOutcome::Failed(e) => {
                let _ = write!(
                    out,
                    ", \"status\": \"failed\", \"kind\": \"{}\", \"error\": \"{}\"",
                    e.kind.name(),
                    esc(&e.message)
                );
            }
        }
        out.push('}');
        if i + 1 < result.units.len() {
            out.push(',');
        }
        out.push('\n');
    }
    let t = &result.totals;
    let total = t.pipeline.total();
    out.push_str("  ],\n  \"totals\": {\n");
    let _ = writeln!(
        out,
        "    \"functions\": {}, \"ok\": {}, \"failed\": {}, \"computed\": {},",
        t.functions, t.ok, t.failed, t.computed
    );
    let _ = writeln!(
        out,
        "    \"solver\": {{\"node_visits\": {}, \"word_ops\": {}}},",
        total.node_visits, total.word_ops
    );
    let _ = writeln!(
        out,
        "    \"transform\": {{\"insertions\": {}, \"deletions\": {}, \"retained_defs\": {}, \
         \"edges_split\": {}, \"temps\": {}}},",
        t.transform.insertions,
        t.transform.deletions,
        t.transform.retained_defs,
        t.transform.edges_split,
        t.transform.temps
    );
    let _ = writeln!(
        out,
        "    \"validation\": {{\"checks\": {}, \"inputs_sampled\": {}}},",
        t.validation_checks, t.inputs_sampled
    );
    let _ = writeln!(
        out,
        "    \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"entries\": {}}}",
        t.cache.hits, t.cache.misses, t.cache.evictions, t.cache_entries
    );
    out.push_str("  }\n}\n");
    out
}

/// Collapses a message to one line for `#`-comment reporting.
fn one_line(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_control() { ' ' } else { c })
        .collect()
}

/// Minimal JSON string escaping.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if c.is_control() => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}
