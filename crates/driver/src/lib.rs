//! # lcm-driver — the parallel batch-optimization engine
//!
//! Every other entry point in the workspace handles one function at a time.
//! This crate drives a whole [`Module`] (or a directory of `.lcm` files)
//! through the checked LCM pipeline:
//!
//! * **Sharding** — functions are fanned out over a work-stealing pool of
//!   scoped `std::thread` workers ([`pool::run_indexed`]); results are
//!   collected by function index, never by completion order.
//! * **Isolation** — each function runs inside `catch_unwind` with its
//!   input verified first, so a malformed or pipeline-crashing function
//!   fails *its unit* and the rest of the batch completes.
//! * **Caching** — a content-addressed [`PlanCache`] keyed by the
//!   canonically-printed function body means duplicate functions across a
//!   corpus are optimized once; cached plans are **re-validated** on hit,
//!   so a corrupted cache degrades to a unit failure, not to wrong code.
//! * **Determinism** — cache lookups, cache insertions and report assembly
//!   are sequential in function order; only the pipeline runs themselves
//!   are parallel. The rendered output and aggregated statistics are
//!   byte-identical for every thread count (asserted in
//!   `tests/determinism.rs` and by `ci.sh`'s batch smoke stage).
//!
//! # Example
//!
//! ```
//! use lcm_driver::{BatchEngine, BatchOptions};
//!
//! let m = lcm_ir::parse_module(
//!     "fn a {\nentry:\n  x = p + q\n  obs x\n  ret\n}\n\n\
//!      fn b {\nentry:\n  x = p + q\n  obs x\n  ret\n}",
//! )?;
//! let mut engine = BatchEngine::new(BatchOptions::default());
//! let result = engine.run_module(&m);
//! assert_eq!(result.totals.ok, 2);
//! // `b` is `a` with different names — optimized once, served from cache.
//! assert_eq!(result.totals.cache.hits, 1);
//! # Ok::<(), lcm_ir::ParseError>(())
//! ```

pub mod pool;
pub mod report;

pub mod protocol;
pub mod serve;

mod cache;
mod load;
mod persist;

pub use cache::{
    canonical_text, fingerprint, fingerprint_with_context, CacheEntry, CacheStats, ComputedOrigin,
    PlanCache, CANONICAL_NAME,
};
pub use load::{load_units, text_from_bytes, LoadError};
pub use persist::{
    corrupt_sidecar, load_cache, load_or_quarantine, save_cache, tmp_path, CacheFileError,
    LifetimeCounters, LoadStatus, CACHE_FORMAT_VERSION, CACHE_MAGIC, STATS_MAGIC,
};

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use lcm_core::transform::TransformStats;
use lcm_core::validate::{sample_inputs, validate_optimized, ValidationLevel};
use lcm_core::{
    optimize_checked_budgeted, optimize_incremental_checked_with,
    optimize_speculative_checked_budgeted, passes, EdgeWeights, IncrementalState, IncrementalStats,
    OptimizeBudget, PhaseNanos, PipelineError, PipelineStats, PreAlgorithm, SpecStats,
};
use lcm_dataflow::{SolveStrategy, SolverScratch};
use lcm_ir::{parse_function, simplify_cfg, verify, Function, Module, Profile};

/// How a batch run is configured.
#[derive(Clone, Copy, Debug)]
pub struct BatchOptions {
    /// Worker threads; `0` means [`std::thread::available_parallelism`].
    pub jobs: usize,
    /// The PRE placement each unit runs.
    /// [`PreAlgorithm::Speculative`] consumes the unit's edge profile;
    /// units without a (resolvable) profile fall back to
    /// [`PreAlgorithm::LazyEdge`] — there is no frequency information to
    /// speculate on — and share cache entries with plain LCM runs.
    pub placement: PreAlgorithm,
    /// Validation tier for computed units; cache hits are re-validated at
    /// the fast tier whenever this is not [`ValidationLevel::Off`].
    pub validate: ValidationLevel,
    /// Seed for the validator's differential execution.
    pub seed: u64,
    /// Whether the plan cache is consulted and filled.
    pub use_cache: bool,
    /// Plan-cache capacity in entries; `0` means unbounded.
    pub cache_capacity: usize,
    /// Which fixpoint solver the fused pipeline runs. Every strategy
    /// reaches the same fixpoints, so this never changes any output — only
    /// the solver cost counters.
    pub strategy: SolveStrategy,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            jobs: 0,
            placement: PreAlgorithm::LazyEdge,
            validate: ValidationLevel::Fast,
            seed: 0x1c3a_57ed,
            use_cache: true,
            cache_capacity: 4096,
            strategy: SolveStrategy::default(),
        }
    }
}

/// One function to optimize, with its provenance for reporting.
#[derive(Clone, Debug)]
pub struct BatchUnit {
    /// The file the function came from, if any.
    pub file: Option<String>,
    /// The function itself.
    pub function: Function,
    /// The function's edge profile, if its module carried one. Consulted
    /// only under [`PreAlgorithm::Speculative`].
    pub profile: Option<Profile>,
}

/// Why a unit failed. The batch itself never fails; these are per-unit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// The input function failed structural verification.
    InvalidInput,
    /// The checked pipeline returned a typed [`lcm_core::PipelineError`].
    Pipeline,
    /// The cleanup passes produced IR that fails verification.
    InvalidOutput,
    /// The pipeline panicked; the panic was caught and contained.
    Panic,
    /// A cached plan failed re-validation on hit (cache corruption).
    PoisonedCache,
    /// The unit exceeded its [`OptimizeBudget`] (deadline/fuel/cancel flag)
    /// and was abandoned at a pipeline stage boundary.
    Cancelled,
}

impl FailureKind {
    /// A short stable name, used in reports.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::InvalidInput => "invalid-input",
            FailureKind::Pipeline => "pipeline",
            FailureKind::InvalidOutput => "invalid-output",
            FailureKind::Panic => "panic",
            FailureKind::PoisonedCache => "poisoned-cache",
            FailureKind::Cancelled => "cancelled",
        }
    }
}

/// A unit failure: what kind, and the underlying message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnitError {
    /// The failure class.
    pub kind: FailureKind,
    /// The underlying error or panic message.
    pub message: String,
}

/// A successfully optimized unit.
#[derive(Clone, Debug)]
pub struct UnitSuccess {
    /// The optimized function, printed under the unit's own name.
    pub output: String,
    /// Solver statistics of the fused pipeline run (cached runs report the
    /// statistics recorded when the entry was built).
    pub pipeline: PipelineStats,
    /// Rewrite counters.
    pub transform: TransformStats,
    /// Validator checks run **for this unit in this batch** — zero for a
    /// duplicate replayed from a leader computed moments earlier.
    pub validation_checks: usize,
    /// Differential inputs sampled for this unit in this batch.
    pub inputs_sampled: usize,
}

/// The outcome of one unit.
#[derive(Clone, Debug)]
pub enum UnitOutcome {
    /// Optimized (possibly from cache) and validated.
    Ok(UnitSuccess),
    /// Failed; the rest of the batch is unaffected.
    Failed(UnitError),
}

/// How the cache participated in a unit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheDisposition {
    /// The cache was off.
    Uncached,
    /// A pipeline run produced (and cached) the result.
    Computed,
    /// Served from the cache — a prior batch's entry or an intra-batch
    /// duplicate's leader.
    Hit,
}

impl CacheDisposition {
    /// A short stable name, used in reports.
    pub fn name(self) -> &'static str {
        match self {
            CacheDisposition::Uncached => "uncached",
            CacheDisposition::Computed => "computed",
            CacheDisposition::Hit => "hit",
        }
    }
}

/// Everything the driver has to say about one unit.
#[derive(Clone, Debug)]
pub struct UnitReport {
    /// The function's name.
    pub name: String,
    /// The file it came from, if any.
    pub file: Option<String>,
    /// How the cache participated.
    pub cache: CacheDisposition,
    /// What happened.
    pub outcome: UnitOutcome,
}

/// Deterministic aggregates over a batch.
///
/// Wall-clock numbers are deliberately absent: everything here is a pure
/// function of the input module and the cache state, so it is identical
/// for every `--jobs` value. Timing belongs on stderr.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct BatchTotals {
    /// Units in the batch.
    pub functions: usize,
    /// Units that optimized successfully.
    pub ok: usize,
    /// Units that failed.
    pub failed: usize,
    /// Units that ran the pipeline (as opposed to hitting the cache).
    pub computed: usize,
    /// Merged solver statistics over computed units.
    pub pipeline: PipelineStats,
    /// Merged rewrite counters over computed units.
    pub transform: TransformStats,
    /// Merged speculative-planner counters over computed units (all zero
    /// unless the batch ran [`PreAlgorithm::Speculative`]).
    pub spec: SpecStats,
    /// Validator checks run in this batch (computed units plus cache-hit
    /// re-validations).
    pub validation_checks: usize,
    /// Differential inputs sampled in this batch.
    pub inputs_sampled: usize,
    /// Cache counters — cumulative for the engine, so a second batch on
    /// the same engine sees the first batch's entries.
    pub cache: CacheStats,
    /// Live cache entries after the batch.
    pub cache_entries: usize,
    /// Lifetime cache counters (persisted footer + this process), present
    /// only when the engine is backed by a cache file.
    pub lifetime: Option<LifetimeCounters>,
}

/// The result of one batch run.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// Per-unit reports, in input order.
    pub units: Vec<UnitReport>,
    /// Deterministic aggregates.
    pub totals: BatchTotals,
}

/// How phase 1 decided to handle a unit. Planning is sequential and in
/// input order, so the decisions — and every cache counter — are
/// independent of the thread count.
enum UnitPlan {
    /// Input verification failed.
    Invalid(UnitError),
    /// Run the pipeline; cache under `key` if the cache is on.
    Compute { key: Option<u128> },
    /// Intra-batch duplicate of the unit at `leader` (which computes).
    Replay { leader: usize },
    /// Already cached. The reporting fields are snapshotted at planning
    /// time so later insertions (and their evictions) cannot disturb them.
    Hit {
        key: u128,
        output_text: String,
        pipeline: PipelineStats,
        transform: TransformStats,
    },
}

/// One parallel job: run a unit's pipeline, or re-validate a cached entry.
enum Job {
    Compute(usize),
    Revalidate(u128),
}

/// What a parallel job produced. The computed entry is boxed: it is two
/// orders of magnitude bigger than the revalidation counters.
enum JobOut {
    Computed(usize, Result<Box<CacheEntry>, UnitError>),
    Revalidated(u128, Result<(usize, usize), UnitError>),
}

/// The durable-cache half of an engine: where the cache file lives, the
/// counters it carried when loaded, and how the load went.
#[derive(Debug)]
struct PersistState {
    path: std::path::PathBuf,
    base: LifetimeCounters,
    status: LoadStatus,
}

/// The retained fixpoint for one function name — what the daemon hot path
/// ([`optimize_unit_incremental`]) delta-solves against on the next edit
/// of the same function, tagged with the cache fingerprint of the input it
/// was computed from so staleness is detectable.
#[derive(Debug)]
pub struct PrevSolve {
    /// Fingerprint (with placement context) of the pre-LCSE input the
    /// state was computed from.
    pub key: u128,
    /// The retained universe, local predicates, and AVAIL/ANTIC/LATER
    /// fixpoints over the post-LCSE canonical function.
    pub state: IncrementalState,
    /// The canonical printed output the state produced — the zero-dirty
    /// memo. A revision whose fingerprint equals `key` under the same
    /// `opts_tag` replays this text verbatim, skipping plan, rewrite,
    /// validation, and printing entirely.
    pub output_text: String,
    /// Fingerprint of every output-affecting engine option
    /// ([`options_tag`]) at the time the memo was recorded. Any placement,
    /// validation, seed, or solver change invalidates the memo — the next
    /// revision recomputes even on identical input.
    pub opts_tag: String,
}

/// The output-affecting option fingerprint a [`PrevSolve`] memo is keyed
/// under. Deliberately includes the validation tier and seed even though
/// they cannot change the output text: a flag change must force a real
/// run, never a memo replay recorded under different settings.
pub fn options_tag(opts: &BatchOptions) -> String {
    format!(
        "{}|{:?}|{:#x}|{:?}",
        opts.placement.name(),
        opts.validate,
        opts.seed,
        opts.strategy
    )
}

/// Per-class counts of what the edits a daemon or watch session saw
/// actually were — the honest ledger behind any "delta path" speedup
/// claim. One class per revision-with-retained-state, by priority:
/// zero-dirty (memo replay), fallback, shape-mapped, universe-grow,
/// universe-shrink, plain content.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct EditClassCounters {
    /// Same-shape, same-universe content edits answered by a delta solve.
    pub content: u64,
    /// Edits that grew the expression universe (columns widened in place).
    pub universe_grow: u64,
    /// Edits that shrank the universe (columns remapped).
    pub universe_shrink: u64,
    /// One-block shape edits mapped onto the delta path (rows permuted).
    pub shape_mapped: u64,
    /// Edits beyond the mapped shapes: the full-solve fallback.
    pub fallback: u64,
    /// Identical revisions answered by the output memo with no solve at
    /// all.
    pub zero_dirty: u64,
}

impl EditClassCounters {
    /// Classifies one non-memo revision that had retained state.
    fn note(&mut self, stats: &IncrementalStats) {
        if stats.full_fallback {
            self.fallback += 1;
        } else if stats.shape_mapped {
            self.shape_mapped += 1;
        } else if stats.universe_grew {
            self.universe_grow += 1;
        } else if stats.universe_shrunk {
            self.universe_shrink += 1;
        } else {
            self.content += 1;
        }
    }

    /// Total classified revisions.
    pub fn total(&self) -> u64 {
        self.content
            + self.universe_grow
            + self.universe_shrink
            + self.shape_mapped
            + self.fallback
            + self.zero_dirty
    }
}

impl fmt::Display for EditClassCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} content, {} universe-grow, {} universe-shrink, \
             {} shape-mapped, {} fallback, {} zero-dirty",
            self.content,
            self.universe_grow,
            self.universe_shrink,
            self.shape_mapped,
            self.fallback,
            self.zero_dirty
        )
    }
}

/// Which path answered one unit of
/// [`BatchEngine::run_module_incremental`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IncrementalMode {
    /// First sight of this function name: solved fresh, fixpoints now
    /// retained for its next revision.
    Fresh,
    /// Delta-solved against the retained fixpoints — only the SCC
    /// components the edit can reach were re-solved.
    Delta,
    /// Retained state existed, but the CFG shape changed beyond the mapped
    /// edits, forcing the full-solve fallback (the state was refreshed
    /// either way).
    Fallback,
    /// The revision is byte-identical (same fingerprint, same options) to
    /// the one the retained state answered: the output memo was replayed
    /// with no solve, rewrite, validation, or printing work at all.
    ZeroDirty,
    /// The placement is not [`incremental_eligible`]; the unit ran the
    /// ordinary one-shot pipeline with no state retention.
    OneShot,
}

impl IncrementalMode {
    /// Short lowercase label for stats lines (`fresh`, `delta`, ...).
    pub fn name(self) -> &'static str {
        match self {
            IncrementalMode::Fresh => "fresh",
            IncrementalMode::Delta => "delta",
            IncrementalMode::Fallback => "fallback",
            IncrementalMode::ZeroDirty => "zero-dirty",
            IncrementalMode::OneShot => "one-shot",
        }
    }
}

/// One function's outcome from [`BatchEngine::run_module_incremental`],
/// in module order.
#[derive(Debug)]
pub struct IncrementalUnit {
    /// The function's name.
    pub name: String,
    /// The optimized function text (name restored, byte-identical to the
    /// batch pipeline's output), or the typed unit failure.
    pub outcome: Result<String, UnitError>,
    /// Which path answered it.
    pub mode: IncrementalMode,
    /// Delta accounting; all-default unless `mode` is
    /// [`IncrementalMode::Delta`] or [`IncrementalMode::Fallback`].
    pub stats: IncrementalStats,
    /// Block count of the input — the yardstick for
    /// `stats.delta_blocks_resolved` (a from-scratch solve pays one row
    /// per block in each of the three analyses, i.e. `3 * blocks`).
    pub blocks: usize,
    /// Wall-clock split of this unit's work into the solve phase (LCSE +
    /// fixpoints) and the tail (plan, rewrite, cleanup passes,
    /// validation, print). Both zero for a memo replay — that is the
    /// point.
    pub phases: PhaseNanos,
}

/// The batch engine: a [`BatchOptions`] plus a [`PlanCache`] that persists
/// across [`BatchEngine::run`] calls — and, when opened with
/// [`BatchEngine::with_cache_file`], across processes.
#[derive(Debug)]
pub struct BatchEngine {
    opts: BatchOptions,
    cache: PlanCache,
    persisted: Option<PersistState>,
    /// Per-function-name retained fixpoints for the incremental hot path.
    /// An entry is replaced on every re-optimization of its function and
    /// lives until the process exits; the map is bounded by the number of
    /// distinct function names a daemon serves.
    prev_solves: HashMap<String, PrevSolve>,
    /// Session increments of [`LifetimeCounters::incremental_hits`] and
    /// [`LifetimeCounters::delta_blocks_resolved`] (no [`CacheStats`] twin).
    incremental_hits: u64,
    delta_blocks_resolved: u64,
    /// Per-class edit ledger for this process's incremental revisions.
    edit_classes: EditClassCounters,
    /// Accumulated solve/tail wall-clock over this process's incremental
    /// units (memo replays contribute nothing — again, the point).
    phases: PhaseNanos,
}

impl BatchEngine {
    /// Creates an engine with an empty cache.
    pub fn new(opts: BatchOptions) -> Self {
        BatchEngine {
            cache: PlanCache::new(opts.cache_capacity),
            opts,
            persisted: None,
            prev_solves: HashMap::new(),
            incremental_hits: 0,
            delta_blocks_resolved: 0,
            edit_classes: EditClassCounters::default(),
            phases: PhaseNanos::default(),
        }
    }

    /// Creates an engine backed by the `lcm-cache-v1` file at `path`: a
    /// valid file starts the cache warm (with thin, re-validated-on-hit
    /// entries), a missing file starts it cold, and a corrupt file is
    /// quarantined to a `.corrupt` sidecar and the cache starts cold.
    /// Inspect [`BatchEngine::load_status`] for which happened. Nothing is
    /// written back until [`BatchEngine::flush_cache_file`].
    pub fn with_cache_file(opts: BatchOptions, path: &std::path::Path) -> Self {
        let (cache, base, status) = persist::load_or_quarantine(path, opts.cache_capacity);
        BatchEngine {
            cache,
            opts,
            persisted: Some(PersistState {
                path: path.to_path_buf(),
                base,
                status,
            }),
            prev_solves: HashMap::new(),
            incremental_hits: 0,
            delta_blocks_resolved: 0,
            edit_classes: EditClassCounters::default(),
            phases: PhaseNanos::default(),
        }
    }

    /// How the backing cache file loaded; `None` for an in-memory engine.
    pub fn load_status(&self) -> Option<&LoadStatus> {
        self.persisted.as_ref().map(|p| &p.status)
    }

    /// Lifetime cache counters — the persisted footer's totals plus this
    /// process's session; `None` for an in-memory engine.
    pub fn lifetime(&self) -> Option<LifetimeCounters> {
        self.persisted.as_ref().map(|p| self.session_totals(p.base))
    }

    /// `base` plus everything this process has counted so far.
    fn session_totals(&self, base: LifetimeCounters) -> LifetimeCounters {
        let mut l = base.plus_session(self.cache.stats());
        l.incremental_hits += self.incremental_hits;
        l.delta_blocks_resolved += self.delta_blocks_resolved;
        let e = &self.edit_classes;
        l.zero_dirty_hits += e.zero_dirty;
        l.content_edits += e.content;
        l.universe_grow_edits += e.universe_grow;
        l.universe_shrink_edits += e.universe_shrink;
        l.shape_mapped_edits += e.shape_mapped;
        l.fallback_edits += e.fallback;
        l
    }

    /// Removes and returns the retained fixpoint for `name`, if any. The
    /// take/put split (instead of borrowing in place) lets a daemon worker
    /// release the engine lock while it delta-solves; a concurrent unit of
    /// the same name simply finds no state and solves fresh.
    pub fn take_prev_solve(&mut self, name: &str) -> Option<PrevSolve> {
        self.prev_solves.remove(name)
    }

    /// Retains `prev` as the fixpoint to delta-solve `name`'s next
    /// revision against, replacing any earlier state for that name.
    pub fn put_prev_solve(&mut self, name: &str, prev: PrevSolve) {
        self.prev_solves.insert(name.to_string(), prev);
    }

    /// Retained fixpoint entries currently held.
    pub fn prev_solves_len(&self) -> usize {
        self.prev_solves.len()
    }

    /// Counts one unit answered via the delta path (not the full-solve
    /// fallback), which re-solved `delta_blocks` block rows.
    pub fn note_incremental_hit(&mut self, delta_blocks: u64) {
        self.incremental_hits += 1;
        self.delta_blocks_resolved += delta_blocks;
    }

    /// Counts one identical revision answered by the zero-dirty memo.
    pub fn note_zero_dirty(&mut self) {
        self.edit_classes.zero_dirty += 1;
    }

    /// Classifies one non-memo revision that had retained state into the
    /// edit-class ledger.
    pub fn note_edit_class(&mut self, stats: &IncrementalStats) {
        self.edit_classes.note(stats);
    }

    /// Accumulates one incremental unit's solve/tail wall-clock split.
    pub fn note_phases(&mut self, phases: PhaseNanos) {
        self.phases.solve_ns += phases.solve_ns;
        self.phases.tail_ns += phases.tail_ns;
    }

    /// This process's incremental counters so far:
    /// `(incremental_hits, delta_blocks_resolved)`.
    pub fn incremental_session(&self) -> (u64, u64) {
        (self.incremental_hits, self.delta_blocks_resolved)
    }

    /// This process's per-class edit ledger so far.
    pub fn edit_classes(&self) -> EditClassCounters {
        self.edit_classes
    }

    /// Accumulated solve/tail wall-clock over this process's incremental
    /// units.
    pub fn incremental_phases(&self) -> PhaseNanos {
        self.phases
    }

    /// Counts a quarantined *entry*: a persisted entry that failed
    /// hit-revalidation and was removed (the daemon's recovery path).
    /// No-op for an in-memory engine.
    pub fn note_entry_quarantine(&mut self) {
        if let Some(p) = &mut self.persisted {
            p.base.quarantines += 1;
        }
    }

    /// Durably writes the cache (and lifetime counters) back to the
    /// backing file — atomic temp-then-rename, see [`save_cache`]. No-op
    /// without a backing file.
    ///
    /// # Errors
    ///
    /// Any I/O error from [`save_cache`].
    pub fn flush_cache_file(&self) -> std::io::Result<()> {
        let Some(p) = &self.persisted else {
            return Ok(());
        };
        persist::save_cache(&p.path, &self.cache, self.session_totals(p.base))
    }

    /// The configuration.
    pub fn options(&self) -> &BatchOptions {
        &self.opts
    }

    /// The plan cache (counters, size).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Mutable access to the cache — for fault injection and tests; the
    /// normal driver path never needs it.
    pub fn cache_mut(&mut self) -> &mut PlanCache {
        &mut self.cache
    }

    /// Optimizes every function of `m` as one batch.
    pub fn run_module(&mut self, m: &Module) -> BatchResult {
        self.run(
            m.iter()
                .map(|f| BatchUnit {
                    file: None,
                    profile: m.profile(&f.name).cloned(),
                    function: f.clone(),
                })
                .collect(),
        )
    }

    /// Optimizes every function of `m` through the incremental hot path,
    /// sequentially and in module order: retained fixpoints (see
    /// [`PrevSolve`]) answer a repeat revision of a function with an
    /// SCC-scoped delta solve, first sights solve fresh and leave their
    /// fixpoints behind, and shape or universe changes fall back to a full
    /// solve. Functions whose placement is not [`incremental_eligible`]
    /// run the ordinary one-shot pipeline instead.
    ///
    /// Per-unit output text is byte-identical to [`BatchEngine::run_module`]
    /// for the same input and options (pinned by `tests/incremental.rs`
    /// and `tests/watch.rs`). This is the `lcmopt watch` engine; the serve
    /// daemon wires the same take → solve → put cycle into its connection
    /// handler.
    pub fn run_module_incremental(&mut self, m: &Module) -> Vec<IncrementalUnit> {
        let mut scratch = SolverScratch::new();
        m.iter()
            .map(|f| self.incremental_unit(f, m.profile(&f.name), &mut scratch))
            .collect()
    }

    fn incremental_unit(
        &mut self,
        f: &Function,
        profile: Option<&Profile>,
        scratch: &mut SolverScratch,
    ) -> IncrementalUnit {
        let blocks = f.num_blocks();
        let unit = |outcome, mode, stats, phases| IncrementalUnit {
            name: f.name.clone(),
            outcome,
            mode,
            stats,
            blocks,
            phases,
        };
        if let Err(e) = verify(f) {
            let err = UnitError {
                kind: FailureKind::InvalidInput,
                message: e.to_string(),
            };
            return unit(
                Err(err),
                IncrementalMode::OneShot,
                IncrementalStats::default(),
                PhaseNanos::default(),
            );
        }
        let weights = if self.opts.placement == PreAlgorithm::Speculative {
            profile.and_then(|p| EdgeWeights::from_profile(f, p).ok())
        } else {
            None
        };
        let context = unit_context(self.opts.placement, weights.as_ref());
        if !incremental_eligible(self.opts.placement, weights.as_ref()) {
            let computed = isolate(AssertUnwindSafe(|| {
                optimize_unit(
                    f,
                    &self.opts,
                    weights.as_ref(),
                    &context,
                    scratch,
                    &OptimizeBudget::unlimited(),
                )
            }));
            return unit(
                computed.map(|e| cache::with_name(&e.output_text, &f.name)),
                IncrementalMode::OneShot,
                IncrementalStats::default(),
                PhaseNanos::default(),
            );
        }
        let key = fingerprint_with_context(f, &context).0;
        let tag = options_tag(&self.opts);
        let prev = self.take_prev_solve(&f.name);
        // The zero-dirty memo: an identical revision under identical
        // options replays the retained output with no solve, rewrite,
        // validation, or printing at all. A *dirty* function can never
        // match — the fingerprint covers the whole canonical body — and an
        // option change invalidates via the tag.
        if let Some(p) = &prev {
            if p.key == key && p.opts_tag == tag {
                let output = cache::with_name(&p.output_text, &f.name);
                self.edit_classes.zero_dirty += 1;
                self.put_prev_solve(&f.name, prev.expect("checked above"));
                return unit(
                    Ok(output),
                    IncrementalMode::ZeroDirty,
                    IncrementalStats::default(),
                    PhaseNanos::default(),
                );
            }
        }
        let had_prev = prev.is_some();
        let computed = isolate(AssertUnwindSafe(|| {
            optimize_unit_incremental(
                f,
                &self.opts,
                &context,
                prev.as_ref().map(|p| &p.state),
                scratch,
            )
        }));
        match computed {
            Ok((entry, state, stats, phases)) => {
                let mode = match (had_prev, stats.full_fallback) {
                    (false, _) => IncrementalMode::Fresh,
                    (true, true) => IncrementalMode::Fallback,
                    (true, false) => IncrementalMode::Delta,
                };
                if mode == IncrementalMode::Delta {
                    self.note_incremental_hit(stats.delta_blocks_resolved as u64);
                }
                if had_prev {
                    self.edit_classes.note(&stats);
                }
                self.phases.solve_ns += phases.solve_ns;
                self.phases.tail_ns += phases.tail_ns;
                let output = cache::with_name(&entry.output_text, &f.name);
                self.put_prev_solve(
                    &f.name,
                    PrevSolve {
                        key,
                        state,
                        output_text: entry.output_text.clone(),
                        opts_tag: tag,
                    },
                );
                if self.opts.use_cache {
                    self.cache.insert(key, entry);
                }
                unit(Ok(output), mode, stats, phases)
            }
            Err(e) => unit(
                Err(e),
                IncrementalMode::Fresh,
                IncrementalStats::default(),
                PhaseNanos::default(),
            ),
        }
    }

    /// Optimizes `units` as one batch. See the crate docs for the phase
    /// structure; the short version is *plan sequentially, compute in
    /// parallel, assemble sequentially*.
    pub fn run(&mut self, units: Vec<BatchUnit>) -> BatchResult {
        let threads = resolve_jobs(self.opts.jobs);

        // Resolve profiles to edge weights up front (sequentially, so a
        // malformed profile degrades identically for every thread count).
        // `None` means "run plain LCM": either the batch isn't speculative,
        // or this unit has no resolvable profile to speculate on.
        let weights: Vec<Option<EdgeWeights>> = units
            .iter()
            .map(|u| {
                if self.opts.placement == PreAlgorithm::Speculative {
                    u.profile
                        .as_ref()
                        .and_then(|p| EdgeWeights::from_profile(&u.function, p).ok())
                } else {
                    None
                }
            })
            .collect();
        let contexts: Vec<String> = weights
            .iter()
            .map(|w| unit_context(self.opts.placement, w.as_ref()))
            .collect();

        // Phase 1 — sequential planning in input order: verify inputs,
        // consult the cache, pick one leader per distinct new fingerprint.
        let mut plans: Vec<UnitPlan> = Vec::with_capacity(units.len());
        let mut leader_of: HashMap<u128, usize> = HashMap::new();
        for (i, unit) in units.iter().enumerate() {
            if let Err(e) = verify(&unit.function) {
                plans.push(UnitPlan::Invalid(UnitError {
                    kind: FailureKind::InvalidInput,
                    message: e.to_string(),
                }));
                continue;
            }
            if !self.opts.use_cache {
                plans.push(UnitPlan::Compute { key: None });
                continue;
            }
            let (key, text) = fingerprint_with_context(&unit.function, &contexts[i]);
            if let Some(entry) = self.cache.get(key, &text) {
                let plan = UnitPlan::Hit {
                    key,
                    output_text: entry.output_text.clone(),
                    pipeline: entry.pipeline,
                    transform: entry.transform,
                };
                self.cache.note_hit();
                plans.push(plan);
            } else if let Some(&leader) = leader_of.get(&key) {
                self.cache.note_hit();
                plans.push(UnitPlan::Replay { leader });
            } else {
                self.cache.note_miss();
                leader_of.insert(key, i);
                plans.push(UnitPlan::Compute { key: Some(key) });
            }
        }

        // Phase 2 — the parallel part: pipeline runs for every planned
        // compute, plus one fast-tier re-validation per distinct cache hit.
        let mut jobs: Vec<Job> = Vec::new();
        for (i, plan) in plans.iter().enumerate() {
            if matches!(plan, UnitPlan::Compute { .. }) {
                jobs.push(Job::Compute(i));
            }
        }
        if self.opts.validate != ValidationLevel::Off {
            let mut seen: Vec<u128> = Vec::new();
            for plan in &plans {
                if let UnitPlan::Hit { key, .. } = plan {
                    if !seen.contains(key) {
                        seen.push(*key);
                        jobs.push(Job::Revalidate(*key));
                    }
                }
            }
        }

        let cache = &self.cache;
        let opts = self.opts;
        // One SolverScratch per worker, reused across every function that
        // worker computes: O(threads) solver arenas per batch instead of
        // O(functions × analyses × blocks) transient allocations.
        let outs: Vec<JobOut> = pool::run_indexed_with(
            threads,
            jobs.len(),
            SolverScratch::new,
            |scratch, j| match jobs[j] {
                Job::Compute(i) => JobOut::Computed(
                    i,
                    isolate(AssertUnwindSafe(|| {
                        optimize_unit(
                            &units[i].function,
                            &opts,
                            weights[i].as_ref(),
                            &contexts[i],
                            scratch,
                            &OptimizeBudget::unlimited(),
                        )
                        .map(Box::new)
                    })),
                ),
                Job::Revalidate(key) => {
                    let entry = cache
                        .entry_ref(key)
                        .expect("planned hit entries outlive phase 2");
                    JobOut::Revalidated(
                        key,
                        isolate(AssertUnwindSafe(|| revalidate_entry(entry, opts.seed))),
                    )
                }
            },
        );

        let mut computed: HashMap<usize, Result<Box<CacheEntry>, UnitError>> = HashMap::new();
        let mut revalidated: HashMap<u128, Result<(usize, usize), UnitError>> = HashMap::new();
        for out in outs {
            match out {
                JobOut::Computed(i, r) => {
                    computed.insert(i, r);
                }
                JobOut::Revalidated(key, r) => {
                    revalidated.insert(key, r);
                }
            }
        }

        // Phase 3 — sequential assembly in input order. Cache insertions
        // happen here, in input order, so the eviction sequence is
        // deterministic too.
        let mut reports: Vec<UnitReport> = Vec::with_capacity(units.len());
        let mut totals = BatchTotals {
            functions: units.len(),
            ..BatchTotals::default()
        };
        for (i, (unit, plan)) in units.iter().zip(&plans).enumerate() {
            let name = unit.function.name.clone();
            let (disposition, outcome) = match plan {
                UnitPlan::Invalid(e) => {
                    (CacheDisposition::Uncached, UnitOutcome::Failed(e.clone()))
                }
                UnitPlan::Compute { key } => {
                    let disposition = if key.is_some() {
                        CacheDisposition::Computed
                    } else {
                        CacheDisposition::Uncached
                    };
                    match &computed[&i] {
                        Ok(entry) => {
                            totals.computed += 1;
                            totals.pipeline += entry.pipeline;
                            totals.transform += entry.transform;
                            totals.spec += entry
                                .origin
                                .as_ref()
                                .and_then(|o| o.opt.spec)
                                .unwrap_or_default();
                            totals.validation_checks += entry.validation_checks;
                            totals.inputs_sampled += entry.inputs_sampled;
                            let success = UnitSuccess {
                                output: cache::with_name(&entry.output_text, &name),
                                pipeline: entry.pipeline,
                                transform: entry.transform,
                                validation_checks: entry.validation_checks,
                                inputs_sampled: entry.inputs_sampled,
                            };
                            if let Some(key) = key {
                                self.cache.insert(*key, (**entry).clone());
                            }
                            (disposition, UnitOutcome::Ok(success))
                        }
                        Err(e) => (disposition, UnitOutcome::Failed(e.clone())),
                    }
                }
                UnitPlan::Replay { leader } => match &computed[leader] {
                    Ok(entry) => (
                        CacheDisposition::Hit,
                        UnitOutcome::Ok(UnitSuccess {
                            output: cache::with_name(&entry.output_text, &name),
                            pipeline: entry.pipeline,
                            transform: entry.transform,
                            validation_checks: 0,
                            inputs_sampled: 0,
                        }),
                    ),
                    Err(e) => (CacheDisposition::Hit, UnitOutcome::Failed(e.clone())),
                },
                UnitPlan::Hit {
                    key,
                    output_text,
                    pipeline,
                    transform,
                } => {
                    let checks = if self.opts.validate == ValidationLevel::Off {
                        Ok((0, 0))
                    } else {
                        revalidated[key].clone()
                    };
                    match checks {
                        Ok((validation_checks, inputs_sampled)) => {
                            totals.validation_checks += validation_checks;
                            totals.inputs_sampled += inputs_sampled;
                            (
                                CacheDisposition::Hit,
                                UnitOutcome::Ok(UnitSuccess {
                                    output: cache::with_name(output_text, &name),
                                    pipeline: *pipeline,
                                    transform: *transform,
                                    validation_checks,
                                    inputs_sampled,
                                }),
                            )
                        }
                        Err(e) => (CacheDisposition::Hit, UnitOutcome::Failed(e)),
                    }
                }
            };
            match &outcome {
                UnitOutcome::Ok(_) => totals.ok += 1,
                UnitOutcome::Failed(_) => totals.failed += 1,
            }
            reports.push(UnitReport {
                name,
                file: unit.file.clone(),
                cache: disposition,
                outcome,
            });
        }
        totals.cache = self.cache.stats();
        totals.cache_entries = self.cache.len();
        totals.lifetime = self.lifetime();

        BatchResult {
            units: reports,
            totals,
        }
    }
}

/// Resolves `jobs == 0` to the machine's available parallelism.
fn resolve_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Runs `work` with panics contained: a panic becomes a
/// [`FailureKind::Panic`] unit error instead of crossing the pool's thread
/// scope (which would abort the whole batch).
fn isolate<T>(
    work: AssertUnwindSafe<impl FnOnce() -> Result<T, UnitError>>,
) -> Result<T, UnitError> {
    match catch_unwind(work) {
        Ok(r) => r,
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(UnitError {
                kind: FailureKind::Panic,
                message,
            })
        }
    }
}

/// The placement context a unit is fingerprinted (and cached) under.
/// Empty for plain LCM **and** for profile-less speculative units — the
/// latter run exactly the LCM pipeline, so sharing entries is both sound
/// and desirable. Speculative units with resolved weights spell the full
/// weight vector out: same body + same weights ⇒ same plan.
fn unit_context(placement: PreAlgorithm, weights: Option<&EdgeWeights>) -> String {
    match (placement, weights) {
        (PreAlgorithm::Speculative, Some(w)) => {
            let mut s = format!("spec entry={}", w.entry);
            for e in &w.edges {
                s.push(',');
                s.push_str(&e.to_string());
            }
            s
        }
        (PreAlgorithm::Speculative, None) | (PreAlgorithm::LazyEdge, _) => String::new(),
        (other, _) => other.name().to_string(),
    }
}

/// The per-function pipeline, mirroring `lcmopt`'s default pass order:
/// LCSE → checked PRE (the configured placement) → copy propagation → DCE
/// → CFG simplification → output verification.
///
/// `weights` and `context` must be the ones `run` resolved for this unit:
/// the recorded `canonical_input` embeds the context so the cache's
/// collision guard keeps differently-weighted plans apart. LCSE never
/// touches the CFG, so edge weights resolved against the pre-LCSE
/// function remain valid for `g`.
fn optimize_unit(
    f: &Function,
    opts: &BatchOptions,
    weights: Option<&EdgeWeights>,
    context: &str,
    scratch: &mut SolverScratch,
    budget: &OptimizeBudget,
) -> Result<CacheEntry, UnitError> {
    let (level, seed, strategy) = (opts.validate, opts.seed, opts.strategy);
    let mut g = f.clone();
    g.name = CANONICAL_NAME.to_string();
    let canonical_input = cache::contextual_text(&g.to_string(), context);
    passes::lcse(&mut g);
    let (opt, report) = match (opts.placement, weights) {
        (PreAlgorithm::Speculative, Some(w)) => {
            optimize_speculative_checked_budgeted(&g, w, level, seed, strategy, scratch, budget)
        }
        (PreAlgorithm::Speculative, None) => optimize_checked_budgeted(
            &g,
            PreAlgorithm::LazyEdge,
            level,
            seed,
            strategy,
            scratch,
            budget,
        ),
        (alg, _) => optimize_checked_budgeted(&g, alg, level, seed, strategy, scratch, budget),
    }
    .map_err(|e| UnitError {
        kind: match e {
            PipelineError::Cancelled(_) => FailureKind::Cancelled,
            _ => FailureKind::Pipeline,
        },
        message: e.to_string(),
    })?;
    let mut out = opt.function.clone();
    passes::copy_propagation(&mut out);
    passes::dce(&mut out);
    simplify_cfg(&mut out);
    verify(&out).map_err(|e| UnitError {
        kind: FailureKind::InvalidOutput,
        message: e.to_string(),
    })?;
    // Allocation counts measure scratch temperature — which worker's arena
    // the function happened to land on — not the function itself, so they
    // are scrubbed from the recorded stats to keep batch reports identical
    // for every thread count. `experiments bench` measures them directly.
    let mut pipeline = opt.pipeline_stats.unwrap_or_default();
    pipeline.avail.allocations = 0;
    pipeline.antic.allocations = 0;
    pipeline.later.allocations = 0;
    Ok(CacheEntry {
        canonical_input,
        pipeline,
        transform: opt.transform.stats,
        output_text: out.to_string(),
        origin: Some(Box::new(ComputedOrigin { pre_input: g, opt })),
        validation_checks: report.checks_run,
        inputs_sampled: report.inputs_sampled,
    })
}

/// Whether a unit may take the incremental hot path: the effective
/// placement must be the plain edge-formulation LCM pipeline — the one
/// [`IncrementalState`] retains fixpoints for. That is [`PreAlgorithm::LazyEdge`]
/// itself, or [`PreAlgorithm::Speculative`] with no resolved weights
/// (which runs LazyEdge anyway and shares its cache entries).
pub fn incremental_eligible(placement: PreAlgorithm, weights: Option<&EdgeWeights>) -> bool {
    matches!(
        (placement, weights),
        (PreAlgorithm::LazyEdge, _) | (PreAlgorithm::Speculative, None)
    )
}

/// The incremental twin of [`optimize_unit`]: the same pass order (LCSE →
/// PRE → copy propagation → DCE → CFG simplification → output
/// verification) and bit-identical output, but the PRE step delta-solves
/// against `prev`'s retained fixpoints when one is supplied, re-solving
/// only the SCC components the edit can reach (with an automatic full
/// solve when the CFG shape or expression universe changed). Callers must
/// check [`incremental_eligible`] first. Every result — delta, fallback,
/// or first sight — passes at least the fast validation tier, so a stale
/// or corrupted `prev` costs a typed unit failure, never wrong code.
///
/// Returns the cache entry, the new [`IncrementalState`] to retain for the
/// function's next revision, what the delta path did, and the wall-clock
/// solve/tail phase split. [`IncrementalStats`] is all-default when `prev`
/// was `None` (there was nothing to be incremental against).
pub fn optimize_unit_incremental(
    f: &Function,
    opts: &BatchOptions,
    context: &str,
    prev: Option<&IncrementalState>,
    scratch: &mut SolverScratch,
) -> Result<(CacheEntry, IncrementalState, IncrementalStats, PhaseNanos), UnitError> {
    let (level, seed, strategy) = (opts.validate, opts.seed, opts.strategy);
    let t_start = Instant::now();
    let mut g = f.clone();
    g.name = CANONICAL_NAME.to_string();
    let canonical_input = cache::contextual_text(&g.to_string(), context);
    passes::lcse(&mut g);
    let pipeline_err = |e: PipelineError| UnitError {
        kind: FailureKind::Pipeline,
        message: e.to_string(),
    };
    let (opt, report, state, stats, mut phases) = match prev {
        Some(prev) => {
            let out = optimize_incremental_checked_with(prev, &g, level, seed, strategy, scratch)
                .map_err(pipeline_err)?;
            let mut phases = out.phases;
            // Charge cloning + LCSE to the solve phase so the two phases
            // still sum to this function's whole wall-clock.
            phases.solve_ns = (t_start.elapsed().as_nanos() as u64).saturating_sub(phases.tail_ns);
            (out.optimized, out.report, out.state, out.stats, phases)
        }
        None => {
            let (opt, state) =
                IncrementalState::fresh_with(&g, strategy, scratch).map_err(pipeline_err)?;
            let solve_ns = t_start.elapsed().as_nanos() as u64;
            let effective = if level == ValidationLevel::Off {
                ValidationLevel::Fast
            } else {
                level
            };
            let report = validate_optimized(&g, &opt, effective, seed).map_err(|e| UnitError {
                kind: FailureKind::Pipeline,
                message: e.to_string(),
            })?;
            let phases = PhaseNanos {
                solve_ns,
                tail_ns: (t_start.elapsed().as_nanos() as u64).saturating_sub(solve_ns),
            };
            (opt, report, state, IncrementalStats::default(), phases)
        }
    };
    let t_tail = Instant::now();
    let mut out = opt.function.clone();
    passes::copy_propagation(&mut out);
    passes::dce(&mut out);
    simplify_cfg(&mut out);
    verify(&out).map_err(|e| UnitError {
        kind: FailureKind::InvalidOutput,
        message: e.to_string(),
    })?;
    // Allocations are scrubbed for the same reason as in [`optimize_unit`]:
    // they measure arena temperature, not the function.
    let mut pipeline = opt.pipeline_stats.unwrap_or_default();
    pipeline.avail.allocations = 0;
    pipeline.antic.allocations = 0;
    pipeline.later.allocations = 0;
    let output_text = out.to_string();
    // The driver's cleanup passes and printing are tail work too.
    phases.tail_ns += t_tail.elapsed().as_nanos() as u64;
    Ok((
        CacheEntry {
            canonical_input,
            pipeline,
            transform: opt.transform.stats,
            output_text,
            origin: Some(Box::new(ComputedOrigin { pre_input: g, opt })),
            validation_checks: report.checks_run,
            inputs_sampled: report.inputs_sampled,
        },
        state,
        stats,
        phases,
    ))
}

/// Differential inputs a thin-entry re-validation samples.
const THIN_REVALIDATE_INPUTS: usize = 3;

/// Interpreter fuel per differential run during thin-entry re-validation.
const THIN_REVALIDATE_FUEL: u64 = 100_000;

/// Re-validates a cached entry on a hit — cheap enough to run every time.
///
/// An entry computed in this process carries its [`ComputedOrigin`], and
/// the plan validator's fast tier re-checks the stored plan against the
/// paper's invariants. A **thin** entry (loaded from a persisted cache
/// file) has no plan to audit, so it is re-validated from first
/// principles: both stored texts must re-parse and re-verify, and the
/// output must be observationally equivalent to the input on seeded
/// differential runs. Either way, a corrupted entry degrades to a
/// [`FailureKind::PoisonedCache`] unit failure, never to wrong code.
///
/// Returns the (checks, inputs) counters on success.
fn revalidate_entry(entry: &CacheEntry, seed: u64) -> Result<(usize, usize), UnitError> {
    if let Some(origin) = &entry.origin {
        return match validate_optimized(&origin.pre_input, &origin.opt, ValidationLevel::Fast, seed)
        {
            Ok(report) => Ok((report.checks_run, report.inputs_sampled)),
            Err(e) => Err(UnitError {
                kind: FailureKind::PoisonedCache,
                message: e.to_string(),
            }),
        };
    }
    let poisoned = |message: String| UnitError {
        kind: FailureKind::PoisonedCache,
        message,
    };
    // The stored input embeds the placement context as a `;; ...` suffix,
    // which is not IR; strip it before re-parsing.
    let (input_text, _context) = cache::split_context(&entry.canonical_input);
    let f = parse_function(input_text)
        .map_err(|e| poisoned(format!("persisted entry input does not parse: {e}")))?;
    let g = parse_function(&entry.output_text)
        .map_err(|e| poisoned(format!("persisted entry output does not parse: {e}")))?;
    verify(&f).map_err(|e| poisoned(format!("persisted entry input does not verify: {e}")))?;
    verify(&g).map_err(|e| poisoned(format!("persisted entry output does not verify: {e}")))?;
    let mut state = seed;
    for i in 0..THIN_REVALIDATE_INPUTS {
        let inputs = sample_inputs(&f, &mut state);
        if !lcm_interp::observationally_equivalent(&f, &g, &inputs, THIN_REVALIDATE_FUEL) {
            return Err(poisoned(format!(
                "persisted entry output diverges from its input on sampled run {i}"
            )));
        }
    }
    // Two structural re-verifications plus the differential runs.
    Ok((2 + THIN_REVALIDATE_INPUTS, THIN_REVALIDATE_INPUTS))
}
