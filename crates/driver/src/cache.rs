//! The content-addressed plan cache.
//!
//! Entries are keyed by a 128-bit FNV-1a hash of the **canonically
//! printed** function: the function renamed to a fixed placeholder
//! ([`CANONICAL_NAME`]) and formatted by the IR printer. Renaming is sound
//! because a function's name influences nothing the optimizer computes, so
//! duplicate bodies under different names share one entry; canonical
//! printing means label columns, comments and whitespace don't split
//! entries either. Each entry also stores its canonical text, and lookups
//! compare it, so a hash collision degrades to a miss instead of serving
//! the wrong plan.
//!
//! Eviction is FIFO at a fixed capacity. The driver performs insertions in
//! function-index order, which keeps the eviction sequence — and therefore
//! the hit/miss/eviction counters — identical for every `--jobs` value.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use lcm_core::transform::TransformStats;
use lcm_core::{Optimized, PipelineStats};
use lcm_ir::Function;

/// The placeholder name functions are canonicalised to before hashing.
pub const CANONICAL_NAME: &str = "__fn";

/// The in-process provenance of a cache entry: the pipeline's intermediate
/// state from the run that built it, kept to **re-validate** the cached
/// plan on a hit with the same validator that guards the live pipeline
/// (see the `lcm-faults` cache-poisoning tests).
#[derive(Clone, Debug)]
pub struct ComputedOrigin {
    /// The post-LCSE function the plan was computed for.
    pub pre_input: Function,
    /// The PRE result (plan + rewritten function) for `pre_input`.
    pub opt: Optimized,
}

/// One cached optimization result, addressed by content.
///
/// Entries computed in this process carry their [`ComputedOrigin`] and are
/// re-validated on a hit via the plan validator. Entries loaded from a
/// persisted `lcm-cache-v1` file are **thin** (`origin` is `None`): the
/// plan and analysis state are not serialised, so a thin hit is instead
/// re-validated by re-parsing both texts, re-verifying the IR, and running
/// seeded differential execution of input against output — an answer is
/// never served on the checksum's word alone.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// Canonical source text of the function (collision guard).
    pub canonical_input: String,
    /// Intermediate state of the run that built the entry; `None` for thin
    /// entries loaded from disk.
    pub origin: Option<Box<ComputedOrigin>>,
    /// The final cleaned-up output, printed under [`CANONICAL_NAME`].
    pub output_text: String,
    /// Solver statistics of the fused pipeline run that built the entry.
    pub pipeline: PipelineStats,
    /// Rewrite counters of the run that built the entry.
    pub transform: TransformStats,
    /// Validator checks run when the entry was built.
    pub validation_checks: usize,
    /// Differential inputs sampled when the entry was built.
    pub inputs_sampled: usize,
}

/// Hit/miss/eviction counters.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CacheStats {
    /// Lookups answered from the cache (including intra-batch duplicates
    /// replayed from a just-computed leader).
    pub hits: usize,
    /// Lookups that required a pipeline run.
    pub misses: usize,
    /// Entries evicted to stay within capacity.
    pub evictions: usize,
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} evictions",
            self.hits, self.misses, self.evictions
        )
    }
}

/// A FIFO-bounded content-addressed map from function fingerprints to
/// optimization results.
#[derive(Debug, Default)]
pub struct PlanCache {
    capacity: usize,
    map: HashMap<u128, CacheEntry>,
    order: VecDeque<u128>,
    stats: CacheStats,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` entries; `0` means
    /// unbounded.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            ..PlanCache::default()
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, verifying the stored canonical text matches (so a
    /// 128-bit collision reads as a miss, never as a wrong plan). Does not
    /// touch the counters; the driver counts hits and misses when it plans
    /// a batch.
    pub fn get(&self, key: u128, canonical_input: &str) -> Option<&CacheEntry> {
        self.map
            .get(&key)
            .filter(|e| e.canonical_input == canonical_input)
    }

    /// Immutable access to an entry by key alone, without the collision
    /// guard — for re-validating hits that were already text-checked when
    /// the batch was planned.
    pub fn entry_ref(&self, key: u128) -> Option<&CacheEntry> {
        self.map.get(&key)
    }

    /// Mutable access to an entry, **bypassing** the collision guard.
    ///
    /// This exists for fault injection: the `lcm-faults` crate corrupts
    /// cached plans through it to prove hit-revalidation catches them. It
    /// is not part of the normal driver path.
    pub fn entry_mut(&mut self, key: u128) -> Option<&mut CacheEntry> {
        self.map.get_mut(&key)
    }

    /// Records a lookup answered from cached state.
    pub fn note_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Records a lookup that required a pipeline run.
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Inserts `entry` under `key`, evicting the oldest entry if the cache
    /// is full. Re-inserting an existing key replaces the entry without
    /// changing its age.
    pub fn insert(&mut self, key: u128, entry: CacheEntry) {
        if self.map.insert(key, entry).is_some() {
            return;
        }
        self.order.push_back(key);
        if self.capacity > 0 && self.map.len() > self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
    }

    /// Inserts a loaded entry without touching any counter — the
    /// persistence loader's path, so re-hydrating a cache file is
    /// observationally silent. If the file holds more entries than
    /// `capacity`, the oldest are dropped exactly as FIFO eviction would
    /// have dropped them, but without counting evictions.
    pub(crate) fn insert_silent(&mut self, key: u128, entry: CacheEntry) {
        if self.map.insert(key, entry).is_some() {
            return;
        }
        self.order.push_back(key);
        if self.capacity > 0 && self.map.len() > self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
    }

    /// Removes the entry under `key`, if any — the daemon's quarantine path
    /// for a persisted entry that fails hit-revalidation. Not counted as an
    /// eviction (the entry was refused, not aged out).
    pub fn remove(&mut self, key: u128) -> Option<CacheEntry> {
        let removed = self.map.remove(&key);
        if removed.is_some() {
            self.order.retain(|k| *k != key);
        }
        removed
    }

    /// Iterates the live entries in insertion (FIFO) order — the
    /// persistence writer's deterministic serialisation order.
    pub fn iter_fifo(&self) -> impl Iterator<Item = (u128, &CacheEntry)> {
        self.order
            .iter()
            .filter_map(|k| self.map.get(k).map(|e| (*k, e)))
    }
}

/// Fingerprints `f` for cache addressing: returns the 128-bit FNV-1a hash
/// of its canonical text, together with that text.
pub fn fingerprint(f: &Function) -> (u128, String) {
    let text = canonical_text(f);
    (fnv1a_128(text.as_bytes()), text)
}

/// Fingerprints `f` under a placement `context` — a short string naming
/// anything beyond the function body that shaped the plan (the placement
/// algorithm, the resolved profile weights). Plans computed under
/// different contexts must never share a cache entry; an empty context
/// hashes exactly like [`fingerprint`], so profile-less speculative runs
/// (which fall back to plain LCM) share entries with LCM batches.
pub fn fingerprint_with_context(f: &Function, context: &str) -> (u128, String) {
    let text = contextual_text(&canonical_text(f), context);
    (fnv1a_128(text.as_bytes()), text)
}

/// Appends `context` to a canonical text as a trailing comment line. The
/// suffix is part of the stored `canonical_input`, so the collision guard
/// in [`PlanCache::get`] separates contexts even on a 128-bit collision.
pub(crate) fn contextual_text(text: &str, context: &str) -> String {
    if context.is_empty() {
        text.to_string()
    } else {
        format!("{text}\n;; {context}")
    }
}

/// Splits a stored `canonical_input` back into the printed function text
/// and its placement-context suffix — the inverse of [`contextual_text`].
/// The `;; context` line is *not* IR (the parser's comments start with
/// `#`), so thin-entry revalidation must strip it before re-parsing.
pub(crate) fn split_context(canonical_input: &str) -> (&str, &str) {
    match canonical_input.split_once("\n;; ") {
        Some((text, context)) => (text, context),
        None => (canonical_input, ""),
    }
}

/// Prints `f` under [`CANONICAL_NAME`], so same-body functions print
/// identically regardless of their names.
pub fn canonical_text(f: &Function) -> String {
    if f.name == CANONICAL_NAME {
        return f.to_string();
    }
    let mut g = f.clone();
    g.name = CANONICAL_NAME.to_string();
    g.to_string()
}

/// Rewrites the canonical header of `output_text` back to `name` for
/// presentation. The canonical text always starts with `fn __fn {`, so a
/// prefix swap is exact.
pub(crate) fn with_name(output_text: &str, name: &str) -> String {
    let header = format!("fn {CANONICAL_NAME} {{");
    let rest = output_text
        .strip_prefix(header.as_str())
        .expect("cached output text must start with the canonical header");
    format!("fn {name} {{{rest}")
}

/// 128-bit FNV-1a. Hand-rolled (hermetic workspace: no hashing crates);
/// the 128-bit width makes accidental collisions over a corpus
/// astronomically unlikely, and the stored-text comparison in
/// [`PlanCache::get`] removes even that case from the correctness argument.
fn fnv1a_128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::parse_function;

    fn entry_for(f: &Function) -> (u128, CacheEntry) {
        let (key, text) = fingerprint(f);
        let opt = lcm_core::optimize(f, lcm_core::PreAlgorithm::LazyEdge).unwrap();
        let entry = CacheEntry {
            canonical_input: text,
            output_text: canonical_text(&opt.function),
            pipeline: opt.pipeline_stats.unwrap_or_default(),
            transform: opt.transform.stats,
            origin: Some(Box::new(ComputedOrigin {
                pre_input: f.clone(),
                opt,
            })),
            validation_checks: 0,
            inputs_sampled: 0,
        };
        (key, entry)
    }

    #[test]
    fn remove_drops_the_entry_and_its_age_slot() {
        let f = parse_function("fn a {\nentry:\n  x = p + q\n  ret\n}").unwrap();
        let (key, entry) = entry_for(&f);
        let mut cache = PlanCache::new(2);
        cache.insert(key, entry);
        assert!(cache.remove(key).is_some());
        assert!(cache.is_empty());
        assert!(cache.remove(key).is_none());
        assert_eq!(cache.iter_fifo().count(), 0);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn split_context_inverts_contextual_text() {
        let text = "fn __fn {\nentry:\n  ret\n}";
        assert_eq!(split_context(text), (text, ""));
        let ctx = contextual_text(text, "spec entry=4,1,3");
        assert_eq!(split_context(&ctx), (text, "spec entry=4,1,3"));
    }

    #[test]
    fn context_splits_fingerprints_and_empty_context_does_not() {
        let f = parse_function("fn a {\nentry:\n  x = p + q\n  ret\n}").unwrap();
        assert_eq!(fingerprint(&f), fingerprint_with_context(&f, ""));
        let (k1, t1) = fingerprint_with_context(&f, "spec entry=4,1,3");
        let (k2, t2) = fingerprint_with_context(&f, "spec entry=4,2,2");
        assert_ne!(fingerprint(&f).0, k1);
        assert_ne!(k1, k2);
        assert_ne!(t1, t2);
        assert!(t1.ends_with(";; spec entry=4,1,3"));
    }

    #[test]
    fn fingerprint_ignores_the_function_name() {
        let a = parse_function("fn a {\nentry:\n  x = p + q\n  ret\n}").unwrap();
        let b = parse_function("fn b {\nentry:\n  x = p + q\n  ret\n}").unwrap();
        let c = parse_function("fn c {\nentry:\n  x = p - q\n  ret\n}").unwrap();
        assert_eq!(fingerprint(&a).0, fingerprint(&b).0);
        assert_ne!(fingerprint(&a).0, fingerprint(&c).0);
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let fns: Vec<Function> = (0..3)
            .map(|i| parse_function(&format!("fn f {{\nentry:\n  x = p + {i}\n  ret\n}}")).unwrap())
            .collect();
        let mut cache = PlanCache::new(2);
        for f in &fns {
            let (key, entry) = entry_for(f);
            cache.insert(key, entry);
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // The first insert is the one evicted.
        let (k0, t0) = fingerprint(&fns[0]);
        assert!(cache.get(k0, &t0).is_none());
        let (k2, t2) = fingerprint(&fns[2]);
        assert!(cache.get(k2, &t2).is_some());
    }

    #[test]
    fn collision_guard_rejects_mismatched_text() {
        let f = parse_function("fn a {\nentry:\n  x = p + q\n  ret\n}").unwrap();
        let (key, entry) = entry_for(&f);
        let mut cache = PlanCache::new(0);
        cache.insert(key, entry);
        assert!(cache.get(key, "fn __fn {\nsomething else\n}").is_none());
        assert!(cache.get(key, &canonical_text(&f)).is_some());
    }

    #[test]
    fn name_substitution_round_trips() {
        let f = parse_function("fn real_name {\nentry:\n  x = p + q\n  ret\n}").unwrap();
        let canon = canonical_text(&f);
        assert_eq!(with_name(&canon, "real_name"), f.to_string());
    }
}
