//! The `lcm-cache-v1` on-disk plan-cache format.
//!
//! A persisted cache lets `lcmopt serve` (and `lcmopt batch --cache-file`)
//! restart warm: entries computed before a crash or redeploy are
//! re-hydrated as **thin** [`CacheEntry`]s and re-validated on every hit
//! (see `revalidate_entry` in the crate root), so the file is a
//! performance artifact, never a trust root. The format is designed for
//! hostile and half-written files:
//!
//! * **Versioned** — an 8-byte magic (`LCMCACHE`) plus a format version;
//!   anything else is refused before a single entry is parsed.
//! * **Checksummed** — every entry carries a 64-bit FNV-1a checksum over
//!   its serialised bytes, and the counter footer carries its own; a
//!   flipped bit anywhere is a load error, not a wrong answer.
//! * **Atomic** — [`save_cache`] writes to a `.tmp` sibling, fsyncs, then
//!   renames over the destination, so a `kill -9` mid-write leaves either
//!   the old file or the new one, never a torn hybrid.
//! * **Quarantined** — [`load_or_quarantine`] moves an unloadable file to
//!   a `.corrupt` sidecar (preserving the evidence) and hands back a cold
//!   cache, so a corrupt file costs warmth, not availability.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! "LCMCACHE"  8 bytes   magic
//! version     u32       format version (currently 3)
//! count       u64       number of entries
//! count × entry:
//!   key         u128    content fingerprint
//!   input_len   u32     byte length of the canonical input text
//!   output_len  u32     byte length of the canonical output text
//!   input       bytes   canonical input (context suffix included)
//!   output      bytes   canonical output
//!   stats       22×u64  pipeline (3×5), transform (5), checks, inputs
//!   checksum    u64     FNV-1a-64 over this entry's preceding bytes
//! "LCMSTATS"  8 bytes   footer magic
//! counters    12×u64    lifetime hits, misses, evictions, quarantines,
//!                       incremental hits, delta blocks resolved,
//!                       zero-dirty hits, and the five edit-class
//!                       counters (content, universe-grow,
//!                       universe-shrink, shape-mapped, fallback)
//! checksum    u64       FNV-1a-64 over footer magic + counters
//! <end of file — trailing bytes are an error>
//! ```

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use lcm_core::transform::TransformStats;
use lcm_core::PipelineStats;
use lcm_dataflow::SolveStats;

use crate::cache::{CacheEntry, CacheStats, PlanCache};

/// The file magic opening every `lcm-cache-v1` file.
pub const CACHE_MAGIC: &[u8; 8] = b"LCMCACHE";
/// The footer magic introducing the lifetime counters.
pub const STATS_MAGIC: &[u8; 8] = b"LCMSTATS";
/// The format version this build reads and writes. Version 2 widened the
/// counter footer from 4 to 6 u64s (incremental hits, delta blocks
/// resolved); version 3 widened it again to 12 (zero-dirty memo hits and
/// the per-class edit ledger). Older files are refused with
/// [`CacheFileError::VersionSkew`] and quarantined, costing warmth once,
/// never correctness.
pub const CACHE_FORMAT_VERSION: u32 = 3;

/// u64 stat fields per entry: 15 pipeline + 5 transform + 2 validation.
const STAT_FIELDS: usize = 22;

/// Cache counters that survive restarts, persisted in the file footer.
///
/// The in-memory [`CacheStats`] counts this process; these count the
/// cache file's whole life across every process that carried it. The
/// `quarantines` counter has no in-memory twin: it counts whole files
/// quarantined at load plus persisted entries evicted after failing
/// hit-revalidation.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct LifetimeCounters {
    /// Lookups answered from cached state, lifetime.
    pub hits: u64,
    /// Lookups that required a pipeline run, lifetime.
    pub misses: u64,
    /// Entries evicted to stay within capacity, lifetime.
    pub evictions: u64,
    /// Corrupt cache files quarantined at load, plus persisted entries
    /// refused by hit-revalidation, lifetime.
    pub quarantines: u64,
    /// Units answered by the incremental hot path — a retained fixpoint
    /// delta-solved instead of a from-scratch pipeline run — lifetime.
    /// Like `quarantines`, this has no [`CacheStats`] twin: the engine
    /// accumulates it directly.
    pub incremental_hits: u64,
    /// Blocks actually re-solved across those incremental hits — the
    /// "charged only for what changed" bill, lifetime.
    pub delta_blocks_resolved: u64,
    /// Identical revisions answered by the zero-dirty output memo (no
    /// solve, rewrite, validation, or print work at all), lifetime.
    pub zero_dirty_hits: u64,
    /// Same-shape, same-universe content edits delta-solved, lifetime.
    pub content_edits: u64,
    /// Universe-growing edits answered by in-place column widening,
    /// lifetime.
    pub universe_grow_edits: u64,
    /// Universe-shrinking edits answered by column remapping, lifetime.
    pub universe_shrink_edits: u64,
    /// One-block shape edits mapped onto the delta path, lifetime.
    pub shape_mapped_edits: u64,
    /// Edits that forced the full-solve fallback, lifetime.
    pub fallback_edits: u64,
}

impl LifetimeCounters {
    /// These counters plus a process's [`CacheStats`] — the totals to
    /// persist (and report) after that process's session. The incremental
    /// counters have no `CacheStats` twin and pass through unchanged; the
    /// engine adds its session's increments itself.
    pub fn plus_session(mut self, session: CacheStats) -> Self {
        self.hits += session.hits as u64;
        self.misses += session.misses as u64;
        self.evictions += session.evictions as u64;
        self
    }
}

impl fmt::Display for LifetimeCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} evictions, {} quarantines, \
             {} incremental hits, {} delta blocks, {} zero-dirty hits; \
             edits: {} content, {} universe-grow, {} universe-shrink, \
             {} shape-mapped, {} fallback",
            self.hits,
            self.misses,
            self.evictions,
            self.quarantines,
            self.incremental_hits,
            self.delta_blocks_resolved,
            self.zero_dirty_hits,
            self.content_edits,
            self.universe_grow_edits,
            self.universe_shrink_edits,
            self.shape_mapped_edits,
            self.fallback_edits
        )
    }
}

/// Why a cache file was refused. Every variant quarantines the whole
/// file: a cache that lies about one byte cannot be trusted about any.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CacheFileError {
    /// The file does not start with [`CACHE_MAGIC`].
    NotACache,
    /// The file's format version is not [`CACHE_FORMAT_VERSION`].
    VersionSkew {
        /// The version the file claims.
        found: u32,
    },
    /// The file ends before the structure it promises.
    Truncated {
        /// What was being read when the bytes ran out.
        reading: &'static str,
    },
    /// An entry's stored checksum does not match its bytes.
    EntryChecksum {
        /// Zero-based index of the offending entry.
        index: u64,
    },
    /// An entry's text is not valid UTF-8 (despite a matching checksum —
    /// only possible for a file we did not write).
    BadText {
        /// Zero-based index of the offending entry.
        index: u64,
    },
    /// The footer magic is wrong — entries ran into the counter block.
    BadFooter,
    /// The footer's stored checksum does not match its bytes.
    FooterChecksum,
    /// Bytes remain after the footer.
    TrailingGarbage {
        /// How many bytes too many.
        extra: usize,
    },
    /// The file could not be read at all.
    Io(String),
}

impl fmt::Display for CacheFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheFileError::NotACache => write!(f, "not an lcm-cache file (bad magic)"),
            CacheFileError::VersionSkew { found } => write!(
                f,
                "cache format version {found} (this build reads {CACHE_FORMAT_VERSION})"
            ),
            CacheFileError::Truncated { reading } => {
                write!(f, "file truncated while reading {reading}")
            }
            CacheFileError::EntryChecksum { index } => {
                write!(f, "entry {index} fails its checksum")
            }
            CacheFileError::BadText { index } => {
                write!(f, "entry {index} holds text that is not UTF-8")
            }
            CacheFileError::BadFooter => write!(f, "counter footer magic missing"),
            CacheFileError::FooterChecksum => write!(f, "counter footer fails its checksum"),
            CacheFileError::TrailingGarbage { extra } => {
                write!(f, "{extra} trailing bytes after the footer")
            }
            CacheFileError::Io(e) => write!(f, "reading cache file: {e}"),
        }
    }
}

impl std::error::Error for CacheFileError {}

/// How [`load_or_quarantine`] obtained its cache.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LoadStatus {
    /// No file existed; the cache starts cold.
    Fresh,
    /// The file loaded and verified; the cache starts warm.
    Loaded {
        /// Entries re-hydrated (after any capacity trimming).
        entries: usize,
    },
    /// The file was refused and moved aside; the cache starts cold.
    Quarantined {
        /// Why the file was refused.
        error: CacheFileError,
        /// Where the evidence went.
        sidecar: PathBuf,
    },
}

/// Atomically writes `cache` (plus the lifetime `counters`) to `path` in
/// the `lcm-cache-v1` format: serialise to `<path>.tmp`, fsync, rename.
/// Entries are written in FIFO order, so save → load preserves the
/// eviction order along with the contents.
///
/// # Errors
///
/// Any I/O error from creating, writing, syncing, or renaming the file.
pub fn save_cache(path: &Path, cache: &PlanCache, counters: LifetimeCounters) -> io::Result<()> {
    let mut buf: Vec<u8> = Vec::new();
    buf.extend_from_slice(CACHE_MAGIC);
    buf.extend_from_slice(&CACHE_FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(cache.len() as u64).to_le_bytes());
    for (key, entry) in cache.iter_fifo() {
        let start = buf.len();
        buf.extend_from_slice(&key.to_le_bytes());
        buf.extend_from_slice(&(entry.canonical_input.len() as u32).to_le_bytes());
        buf.extend_from_slice(&(entry.output_text.len() as u32).to_le_bytes());
        buf.extend_from_slice(entry.canonical_input.as_bytes());
        buf.extend_from_slice(entry.output_text.as_bytes());
        for stat in entry_stats(entry) {
            buf.extend_from_slice(&stat.to_le_bytes());
        }
        let checksum = fnv1a_64(&buf[start..]);
        buf.extend_from_slice(&checksum.to_le_bytes());
    }
    let footer_start = buf.len();
    buf.extend_from_slice(STATS_MAGIC);
    for c in [
        counters.hits,
        counters.misses,
        counters.evictions,
        counters.quarantines,
        counters.incremental_hits,
        counters.delta_blocks_resolved,
        counters.zero_dirty_hits,
        counters.content_edits,
        counters.universe_grow_edits,
        counters.universe_shrink_edits,
        counters.shape_mapped_edits,
        counters.fallback_edits,
    ] {
        buf.extend_from_slice(&c.to_le_bytes());
    }
    let checksum = fnv1a_64(&buf[footer_start..]);
    buf.extend_from_slice(&checksum.to_le_bytes());

    let tmp = tmp_path(path);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&buf)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Make the rename itself durable where the platform allows directory
    // fsync; the rename's atomicity does not depend on it.
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Loads a `lcm-cache-v1` file into a cache of `capacity` (0 = unbounded),
/// verifying magic, version, every entry checksum, and the footer. Loaded
/// entries are **thin** — they carry no plan and are re-validated from
/// first principles on every hit.
///
/// # Errors
///
/// A [`CacheFileError`] describing the first defect found; on error the
/// caller should treat the file as corrupt (see [`load_or_quarantine`]).
pub fn load_cache(
    path: &Path,
    capacity: usize,
) -> Result<(PlanCache, LifetimeCounters), CacheFileError> {
    let bytes = fs::read(path).map_err(|e| CacheFileError::Io(e.to_string()))?;
    let mut r = Reader {
        bytes: &bytes,
        pos: 0,
    };

    if r.take(8, "magic")? != CACHE_MAGIC {
        return Err(CacheFileError::NotACache);
    }
    let version = u32::from_le_bytes(r.take(4, "version")?.try_into().unwrap());
    if version != CACHE_FORMAT_VERSION {
        return Err(CacheFileError::VersionSkew { found: version });
    }
    let count = u64::from_le_bytes(r.take(8, "entry count")?.try_into().unwrap());

    let mut cache = PlanCache::new(capacity);
    for index in 0..count {
        let start = r.pos;
        let key = u128::from_le_bytes(r.take(16, "entry key")?.try_into().unwrap());
        let input_len = u32::from_le_bytes(r.take(4, "entry lengths")?.try_into().unwrap());
        let output_len = u32::from_le_bytes(r.take(4, "entry lengths")?.try_into().unwrap());
        let input = r.take(input_len as usize, "entry input text")?;
        let output = r.take(output_len as usize, "entry output text")?;
        let mut stats = [0u64; STAT_FIELDS];
        for s in &mut stats {
            *s = u64::from_le_bytes(r.take(8, "entry stats")?.try_into().unwrap());
        }
        let body_end = r.pos;
        let stored = u64::from_le_bytes(r.take(8, "entry checksum")?.try_into().unwrap());
        if fnv1a_64(&bytes[start..body_end]) != stored {
            return Err(CacheFileError::EntryChecksum { index });
        }
        let canonical_input =
            String::from_utf8(input.to_vec()).map_err(|_| CacheFileError::BadText { index })?;
        let output_text =
            String::from_utf8(output.to_vec()).map_err(|_| CacheFileError::BadText { index })?;
        cache.insert_silent(key, thin_entry(canonical_input, output_text, &stats));
    }

    if r.take(8, "footer magic")? != STATS_MAGIC {
        return Err(CacheFileError::BadFooter);
    }
    let footer_start = r.pos - 8;
    let mut counters = [0u64; 12];
    for c in &mut counters {
        *c = u64::from_le_bytes(r.take(8, "footer counters")?.try_into().unwrap());
    }
    let footer_end = r.pos;
    let stored = u64::from_le_bytes(r.take(8, "footer checksum")?.try_into().unwrap());
    if fnv1a_64(&bytes[footer_start..footer_end]) != stored {
        return Err(CacheFileError::FooterChecksum);
    }
    if r.pos != bytes.len() {
        return Err(CacheFileError::TrailingGarbage {
            extra: bytes.len() - r.pos,
        });
    }

    Ok((
        cache,
        LifetimeCounters {
            hits: counters[0],
            misses: counters[1],
            evictions: counters[2],
            quarantines: counters[3],
            incremental_hits: counters[4],
            delta_blocks_resolved: counters[5],
            zero_dirty_hits: counters[6],
            content_edits: counters[7],
            universe_grow_edits: counters[8],
            universe_shrink_edits: counters[9],
            shape_mapped_edits: counters[10],
            fallback_edits: counters[11],
        },
    ))
}

/// Loads `path` if it exists and verifies, quarantines it otherwise.
///
/// * Missing file → a cold cache, zero counters, [`LoadStatus::Fresh`].
/// * Valid file → the warm cache and its lifetime counters.
/// * Corrupt file → the file is renamed to `<path>.corrupt` (the
///   **sidecar**, preserving the evidence for forensics), and a cold
///   cache is returned with `quarantines = 1` — the corrupt file's own
///   counters are untrusted along with everything else in it.
///
/// This function never fails: even an unreadable or unmovable file
/// degrades to a cold cache (with the quarantine counted), because a
/// serving process must come up regardless of what it finds on disk.
pub fn load_or_quarantine(
    path: &Path,
    capacity: usize,
) -> (PlanCache, LifetimeCounters, LoadStatus) {
    if !path.exists() {
        return (
            PlanCache::new(capacity),
            LifetimeCounters::default(),
            LoadStatus::Fresh,
        );
    }
    match load_cache(path, capacity) {
        Ok((cache, counters)) => {
            let entries = cache.len();
            (cache, counters, LoadStatus::Loaded { entries })
        }
        Err(error) => {
            let sidecar = corrupt_sidecar(path);
            // Best-effort: if even the rename fails the file stays where it
            // was, but this process still refuses to load it.
            let _ = fs::rename(path, &sidecar);
            (
                PlanCache::new(capacity),
                LifetimeCounters {
                    quarantines: 1,
                    ..LifetimeCounters::default()
                },
                LoadStatus::Quarantined { error, sidecar },
            )
        }
    }
}

/// The `.tmp` sibling [`save_cache`] stages its write in.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// The `.corrupt` sidecar a refused file is quarantined to.
pub fn corrupt_sidecar(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".corrupt");
    PathBuf::from(os)
}

/// Flattens an entry's counters into the 22 persisted u64 fields.
fn entry_stats(entry: &CacheEntry) -> [u64; STAT_FIELDS] {
    let p = &entry.pipeline;
    let t = &entry.transform;
    let solve = |s: &SolveStats| {
        [
            s.iterations as u64,
            s.node_visits as u64,
            s.node_revisits as u64,
            s.word_ops,
            s.allocations,
        ]
    };
    let mut out = [0u64; STAT_FIELDS];
    out[0..5].copy_from_slice(&solve(&p.avail));
    out[5..10].copy_from_slice(&solve(&p.antic));
    out[10..15].copy_from_slice(&solve(&p.later));
    out[15..20].copy_from_slice(&[
        t.insertions as u64,
        t.deletions as u64,
        t.retained_defs as u64,
        t.edges_split as u64,
        t.temps as u64,
    ]);
    out[20] = entry.validation_checks as u64;
    out[21] = entry.inputs_sampled as u64;
    out
}

/// Rebuilds a thin [`CacheEntry`] from its persisted fields.
fn thin_entry(
    canonical_input: String,
    output_text: String,
    stats: &[u64; STAT_FIELDS],
) -> CacheEntry {
    let solve = |s: &[u64]| SolveStats {
        iterations: s[0] as usize,
        node_visits: s[1] as usize,
        node_revisits: s[2] as usize,
        word_ops: s[3],
        allocations: s[4],
    };
    CacheEntry {
        canonical_input,
        origin: None,
        output_text,
        pipeline: PipelineStats {
            avail: solve(&stats[0..5]),
            antic: solve(&stats[5..10]),
            later: solve(&stats[10..15]),
        },
        transform: TransformStats {
            insertions: stats[15] as usize,
            deletions: stats[16] as usize,
            retained_defs: stats[17] as usize,
            edges_split: stats[18] as usize,
            temps: stats[19] as usize,
        },
        validation_checks: stats[20] as usize,
        inputs_sampled: stats[21] as usize,
    }
}

/// 64-bit FNV-1a (hermetic workspace: no hashing crates). The cache key
/// hash stays 128-bit; 64 bits is ample for detecting accidental file
/// corruption, which is what this one guards.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Byte-slice cursor with typed truncation errors.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, reading: &'static str) -> Result<&'a [u8], CacheFileError> {
        if self.bytes.len() - self.pos < n {
            return Err(CacheFileError::Truncated { reading });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BatchEngine, BatchOptions};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lcm-persist-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn warm_engine() -> BatchEngine {
        let m = lcm_ir::parse_module(
            "fn a {\nentry:\n  x = p + q\n  obs x\n  ret\n}\n\n\
             fn b {\nentry:\n  y = p * q\n  obs y\n  ret\n}",
        )
        .unwrap();
        let mut engine = BatchEngine::new(BatchOptions {
            jobs: 1,
            ..BatchOptions::default()
        });
        engine.run_module(&m);
        engine
    }

    #[test]
    fn save_load_round_trips_entries_counters_and_order() {
        let dir = tempdir("roundtrip");
        let path = dir.join("plans.lcmcache");
        let engine = warm_engine();
        let counters = LifetimeCounters {
            hits: 7,
            misses: 11,
            evictions: 2,
            quarantines: 1,
            incremental_hits: 5,
            delta_blocks_resolved: 42,
            zero_dirty_hits: 9,
            content_edits: 13,
            universe_grow_edits: 3,
            universe_shrink_edits: 2,
            shape_mapped_edits: 4,
            fallback_edits: 1,
        };
        save_cache(&path, engine.cache(), counters).unwrap();

        let (loaded, got) = load_cache(&path, 0).unwrap();
        assert_eq!(got, counters);
        assert_eq!(loaded.len(), engine.cache().len());
        for ((k1, e1), (k2, e2)) in engine.cache().iter_fifo().zip(loaded.iter_fifo()) {
            assert_eq!(k1, k2);
            assert_eq!(e1.canonical_input, e2.canonical_input);
            assert_eq!(e1.output_text, e2.output_text);
            assert_eq!(e1.pipeline, e2.pipeline);
            assert_eq!(e1.transform, e2.transform);
            assert_eq!(e1.validation_checks, e2.validation_checks);
            assert_eq!(e1.inputs_sampled, e2.inputs_sampled);
            assert!(e1.origin.is_some());
            assert!(e2.origin.is_none(), "loaded entries must be thin");
        }
        assert!(
            !tmp_path(&path).exists(),
            "staging file must be renamed away"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_trims_to_capacity_like_fifo_eviction_without_counting() {
        let dir = tempdir("capacity");
        let path = dir.join("plans.lcmcache");
        let engine = warm_engine();
        assert_eq!(engine.cache().len(), 2);
        save_cache(&path, engine.cache(), LifetimeCounters::default()).unwrap();
        let (loaded, _) = load_cache(&path, 1).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.stats().evictions, 0);
        // The survivor is the newest entry, as FIFO eviction would leave.
        let newest = engine.cache().iter_fifo().last().unwrap().0;
        assert!(loaded.entry_ref(newest).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_fresh_not_an_error() {
        let dir = tempdir("fresh");
        let (cache, counters, status) = load_or_quarantine(&dir.join("absent.lcmcache"), 0);
        assert!(cache.is_empty());
        assert_eq!(counters, LifetimeCounters::default());
        assert_eq!(status, LoadStatus::Fresh);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_moves_the_file_aside_and_degrades_cold() {
        let dir = tempdir("quarantine");
        let path = dir.join("plans.lcmcache");
        fs::write(&path, b"definitely not a cache").unwrap();
        let (cache, counters, status) = load_or_quarantine(&path, 0);
        assert!(cache.is_empty());
        assert_eq!(counters.quarantines, 1);
        let LoadStatus::Quarantined { error, sidecar } = status else {
            panic!("expected quarantine, got {status:?}");
        };
        assert_eq!(error, CacheFileError::NotACache);
        assert!(!path.exists(), "refused file must be moved away");
        assert!(sidecar.exists(), "sidecar must preserve the evidence");
        assert_eq!(fs::read(&sidecar).unwrap(), b"definitely not a cache");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_cache_round_trips() {
        let dir = tempdir("empty");
        let path = dir.join("plans.lcmcache");
        save_cache(&path, &PlanCache::new(0), LifetimeCounters::default()).unwrap();
        let (cache, counters, status) = load_or_quarantine(&path, 0);
        assert!(cache.is_empty());
        assert_eq!(counters, LifetimeCounters::default());
        assert_eq!(status, LoadStatus::Loaded { entries: 0 });
        fs::remove_dir_all(&dir).unwrap();
    }
}
