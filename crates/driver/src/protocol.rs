//! The framed wire protocol `lcmopt serve` speaks.
//!
//! Frames are length-prefixed: a `u32` big-endian length, then a one-byte
//! tag, then the payload (`length` counts the tag byte plus the payload).
//! Length-prefixing makes the stream self-delimiting — a reader always
//! knows exactly how many bytes to consume, so garbage cannot smear into
//! the next frame — and the [`MAX_FRAME`] ceiling turns an absurd or
//! hostile length prefix into a typed refusal instead of an allocation.
//!
//! ## Requests
//!
//! | tag | frame | payload |
//! |-----|-------|---------|
//! | `0x01` | `OPTIMIZE`  | `u32` deadline ms (0 = none) · `u64` fuel (0 = none) · module text |
//! | `0x02` | `STATS`     | empty |
//! | `0x03` | `SHUTDOWN`  | empty |
//!
//! ## Responses
//!
//! | tag | frame | payload |
//! |-----|-------|---------|
//! | `0x81` | `UNIT_OK`    | `u32` unit index · optimized function text |
//! | `0x82` | `UNIT_ERR`   | `u32` unit index · `u8` code · `u16` name len · name · message |
//! | `0x83` | `DONE`       | `u32` ok count · `u32` failed count |
//! | `0x84` | `ERROR`      | `u8` code · message |
//! | `0x85` | `OVERLOADED` | `u32` retry-after ms |
//! | `0x86` | `STATS`      | stats text |
//! | `0x87` | `BYE`        | empty |
//!
//! All multi-byte protocol integers are big-endian (network order); the
//! on-disk cache format is little-endian — the two never mix.
//!
//! An `OPTIMIZE` request is answered by a stream of per-unit frames
//! (`UNIT_OK`/`UNIT_ERR`, in **completion** order, each tagged with its
//! unit index) terminated by one `DONE` — so one slow unit never blocks
//! the report of its siblings. `ERROR` answers a request that could not
//! be started at all; `OVERLOADED` answers one the admission controller
//! shed. `BYE` acknowledges `SHUTDOWN` (and is the last frame before a
//! drain-triggered close).

use std::fmt;
use std::io::{self, Read, Write};

/// Hard ceiling on a frame's declared length (tag + payload), in bytes.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Request tag: optimize a module.
pub const REQ_OPTIMIZE: u8 = 0x01;
/// Request tag: report daemon statistics.
pub const REQ_STATS: u8 = 0x02;
/// Request tag: drain and shut down.
pub const REQ_SHUTDOWN: u8 = 0x03;

/// Response tag: one unit optimized.
pub const RESP_UNIT_OK: u8 = 0x81;
/// Response tag: one unit failed.
pub const RESP_UNIT_ERR: u8 = 0x82;
/// Response tag: all units of a request answered.
pub const RESP_DONE: u8 = 0x83;
/// Response tag: the request could not be started.
pub const RESP_ERROR: u8 = 0x84;
/// Response tag: the request was shed by admission control.
pub const RESP_OVERLOADED: u8 = 0x85;
/// Response tag: daemon statistics text.
pub const RESP_STATS: u8 = 0x86;
/// Response tag: shutdown acknowledged.
pub const RESP_BYE: u8 = 0x87;

/// Request-level [`Response::Error`] code: the module text failed to parse.
pub const ERR_PARSE: u8 = 1;
/// Request-level error code: the frame itself was malformed.
pub const ERR_BAD_FRAME: u8 = 2;
/// Request-level error code: the frame length exceeded [`MAX_FRAME`].
pub const ERR_TOO_LARGE: u8 = 3;
/// Request-level error code: the daemon is draining and admits no new work.
pub const ERR_DRAINING: u8 = 4;

/// A parsed request frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// Optimize every function of `module` under the given budget.
    Optimize {
        /// Per-request wall-clock budget in milliseconds; 0 = unlimited.
        deadline_ms: u32,
        /// Per-unit solver-fuel budget (node visits); 0 = unlimited.
        fuel: u64,
        /// The module source text.
        module: String,
    },
    /// Report daemon statistics.
    Stats,
    /// Drain in-flight work, flush the cache, close.
    Shutdown,
}

/// A parsed response frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// Unit `index` optimized successfully.
    UnitOk {
        /// The unit's position in the request's module.
        index: u32,
        /// The optimized function, printed under its own name.
        output: String,
    },
    /// Unit `index` failed; its siblings are unaffected.
    UnitErr {
        /// The unit's position in the request's module.
        index: u32,
        /// Failure class, mirroring `FailureKind` (see [`failure_code`]).
        code: u8,
        /// The function's name.
        name: String,
        /// The underlying error message.
        message: String,
    },
    /// Every unit of the request has been answered.
    Done {
        /// Units that succeeded.
        ok: u32,
        /// Units that failed.
        failed: u32,
    },
    /// The request could not be started ([`ERR_PARSE`] etc.).
    Error {
        /// One of the `ERR_*` codes.
        code: u8,
        /// Human-readable detail.
        message: String,
    },
    /// Admission control shed the request; retry after the hinted delay.
    Overloaded {
        /// Suggested client back-off in milliseconds.
        retry_after_ms: u32,
    },
    /// Daemon statistics.
    Stats {
        /// Rendered counters.
        text: String,
    },
    /// Shutdown acknowledged; the connection closes after this frame.
    Bye,
}

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (or hit EOF mid-frame).
    Io(io::Error),
    /// The declared length exceeds [`MAX_FRAME`].
    TooLarge {
        /// The declared length.
        len: u32,
    },
    /// A zero-length frame (no room for even the tag byte).
    Empty,
    /// The tag byte names no known frame.
    UnknownTag {
        /// The offending tag.
        tag: u8,
    },
    /// The payload does not match the tag's schema.
    Malformed {
        /// Which field was being decoded.
        what: &'static str,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport: {e}"),
            FrameError::TooLarge { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte ceiling")
            }
            FrameError::Empty => write!(f, "zero-length frame"),
            FrameError::UnknownTag { tag } => write!(f, "unknown frame tag 0x{tag:02x}"),
            FrameError::Malformed { what } => write!(f, "malformed frame: bad {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Reads one raw frame. `Ok(None)` is a clean close: EOF **between**
/// frames. EOF inside a frame is an error — the peer died mid-sentence.
///
/// # Errors
///
/// [`FrameError::TooLarge`] before any payload is allocated or consumed;
/// [`FrameError::Empty`] for a length of zero; transport errors verbatim.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>, FrameError> {
    let mut len_buf = [0u8; 4];
    // Distinguish clean EOF (no bytes at all) from a torn length prefix.
    match r.read(&mut len_buf)? {
        0 => return Ok(None),
        n => r.read_exact(&mut len_buf[n..])?,
    }
    let len = u32::from_be_bytes(len_buf);
    if len == 0 {
        return Err(FrameError::Empty);
    }
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge { len });
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    let tag = buf[0];
    buf.remove(0);
    Ok(Some((tag, buf)))
}

/// Writes one raw frame (length prefix, tag, payload).
///
/// # Errors
///
/// Transport errors; [`FrameError::TooLarge`] if the payload is oversized.
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> Result<(), FrameError> {
    let len = payload
        .len()
        .checked_add(1)
        .and_then(|n| u32::try_from(n).ok())
        .filter(|&n| n <= MAX_FRAME)
        .ok_or(FrameError::TooLarge { len: u32::MAX })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(&[tag])?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Decodes a raw request frame.
///
/// # Errors
///
/// [`FrameError::UnknownTag`] / [`FrameError::Malformed`].
pub fn decode_request(tag: u8, payload: &[u8]) -> Result<Request, FrameError> {
    match tag {
        REQ_OPTIMIZE => {
            let mut c = Cursor(payload);
            let deadline_ms = c.u32("deadline")?;
            let fuel = c.u64("fuel")?;
            let module = c.rest_utf8("module text")?;
            Ok(Request::Optimize {
                deadline_ms,
                fuel,
                module,
            })
        }
        REQ_STATS => Ok(Request::Stats),
        REQ_SHUTDOWN => Ok(Request::Shutdown),
        tag => Err(FrameError::UnknownTag { tag }),
    }
}

/// Encodes a request as (tag, payload).
pub fn encode_request(req: &Request) -> (u8, Vec<u8>) {
    match req {
        Request::Optimize {
            deadline_ms,
            fuel,
            module,
        } => {
            let mut p = Vec::with_capacity(12 + module.len());
            p.extend_from_slice(&deadline_ms.to_be_bytes());
            p.extend_from_slice(&fuel.to_be_bytes());
            p.extend_from_slice(module.as_bytes());
            (REQ_OPTIMIZE, p)
        }
        Request::Stats => (REQ_STATS, Vec::new()),
        Request::Shutdown => (REQ_SHUTDOWN, Vec::new()),
    }
}

/// Decodes a raw response frame.
///
/// # Errors
///
/// [`FrameError::UnknownTag`] / [`FrameError::Malformed`].
pub fn decode_response(tag: u8, payload: &[u8]) -> Result<Response, FrameError> {
    let mut c = Cursor(payload);
    match tag {
        RESP_UNIT_OK => {
            let index = c.u32("unit index")?;
            let output = c.rest_utf8("unit output")?;
            Ok(Response::UnitOk { index, output })
        }
        RESP_UNIT_ERR => {
            let index = c.u32("unit index")?;
            let code = c.u8("failure code")?;
            let name_len = c.u16("name length")? as usize;
            let name = c.bytes_utf8(name_len, "unit name")?;
            let message = c.rest_utf8("error message")?;
            Ok(Response::UnitErr {
                index,
                code,
                name,
                message,
            })
        }
        RESP_DONE => Ok(Response::Done {
            ok: c.u32("ok count")?,
            failed: c.u32("failed count")?,
        }),
        RESP_ERROR => Ok(Response::Error {
            code: c.u8("error code")?,
            message: c.rest_utf8("error message")?,
        }),
        RESP_OVERLOADED => Ok(Response::Overloaded {
            retry_after_ms: c.u32("retry-after")?,
        }),
        RESP_STATS => Ok(Response::Stats {
            text: c.rest_utf8("stats text")?,
        }),
        RESP_BYE => Ok(Response::Bye),
        tag => Err(FrameError::UnknownTag { tag }),
    }
}

/// Encodes a response as (tag, payload).
pub fn encode_response(resp: &Response) -> (u8, Vec<u8>) {
    match resp {
        Response::UnitOk { index, output } => {
            let mut p = Vec::with_capacity(4 + output.len());
            p.extend_from_slice(&index.to_be_bytes());
            p.extend_from_slice(output.as_bytes());
            (RESP_UNIT_OK, p)
        }
        Response::UnitErr {
            index,
            code,
            name,
            message,
        } => {
            let name = &name.as_bytes()[..name.len().min(u16::MAX as usize)];
            let mut p = Vec::with_capacity(7 + name.len() + message.len());
            p.extend_from_slice(&index.to_be_bytes());
            p.push(*code);
            p.extend_from_slice(&(name.len() as u16).to_be_bytes());
            p.extend_from_slice(name);
            p.extend_from_slice(message.as_bytes());
            (RESP_UNIT_ERR, p)
        }
        Response::Done { ok, failed } => {
            let mut p = Vec::with_capacity(8);
            p.extend_from_slice(&ok.to_be_bytes());
            p.extend_from_slice(&failed.to_be_bytes());
            (RESP_DONE, p)
        }
        Response::Error { code, message } => {
            let mut p = Vec::with_capacity(1 + message.len());
            p.push(*code);
            p.extend_from_slice(message.as_bytes());
            (RESP_ERROR, p)
        }
        Response::Overloaded { retry_after_ms } => {
            (RESP_OVERLOADED, retry_after_ms.to_be_bytes().to_vec())
        }
        Response::Stats { text } => (RESP_STATS, text.as_bytes().to_vec()),
        Response::Bye => (RESP_BYE, Vec::new()),
    }
}

/// Writes an encoded [`Response`] in one call.
///
/// # Errors
///
/// See [`write_frame`].
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<(), FrameError> {
    let (tag, payload) = encode_response(resp);
    write_frame(w, tag, &payload)
}

/// Writes an encoded [`Request`] in one call.
///
/// # Errors
///
/// See [`write_frame`].
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<(), FrameError> {
    let (tag, payload) = encode_request(req);
    write_frame(w, tag, &payload)
}

/// Reads and decodes the next [`Response`]; `Ok(None)` on clean close.
///
/// # Errors
///
/// See [`read_frame`] and [`decode_response`].
pub fn read_response(r: &mut impl Read) -> Result<Option<Response>, FrameError> {
    match read_frame(r)? {
        None => Ok(None),
        Some((tag, payload)) => decode_response(tag, &payload).map(Some),
    }
}

/// The wire code for a unit failure class. Mirrors
/// [`FailureKind`](crate::FailureKind) one-to-one; codes are part of the
/// protocol and must never be renumbered.
pub fn failure_code(kind: crate::FailureKind) -> u8 {
    match kind {
        crate::FailureKind::InvalidInput => 1,
        crate::FailureKind::Pipeline => 2,
        crate::FailureKind::InvalidOutput => 3,
        crate::FailureKind::Panic => 4,
        crate::FailureKind::PoisonedCache => 5,
        crate::FailureKind::Cancelled => 6,
    }
}

/// The stable name for a wire failure code (the inverse presentation of
/// [`failure_code`]; unknown codes render as `"unknown"`).
pub fn failure_code_name(code: u8) -> &'static str {
    match code {
        1 => "invalid-input",
        2 => "pipeline",
        3 => "invalid-output",
        4 => "panic",
        5 => "poisoned-cache",
        6 => "cancelled",
        _ => "unknown",
    }
}

/// Payload cursor with typed underflow errors.
struct Cursor<'a>(&'a [u8]);

impl Cursor<'_> {
    fn u8(&mut self, what: &'static str) -> Result<u8, FrameError> {
        let b = self.take(1, what)?;
        Ok(b[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, FrameError> {
        Ok(u16::from_be_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, FrameError> {
        Ok(u32::from_be_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, FrameError> {
        Ok(u64::from_be_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn bytes_utf8(&mut self, n: usize, what: &'static str) -> Result<String, FrameError> {
        let b = self.take(n, what)?;
        String::from_utf8(b.to_vec()).map_err(|_| FrameError::Malformed { what })
    }

    fn rest_utf8(&mut self, what: &'static str) -> Result<String, FrameError> {
        let b = std::mem::take(&mut self.0);
        String::from_utf8(b.to_vec()).map_err(|_| FrameError::Malformed { what })
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&[u8], FrameError> {
        if self.0.len() < n {
            return Err(FrameError::Malformed { what });
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let (tag, payload) = encode_request(&req);
        assert_eq!(decode_request(tag, &payload).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let (tag, payload) = encode_response(&resp);
        assert_eq!(decode_response(tag, &payload).unwrap(), resp);
    }

    #[test]
    fn every_frame_round_trips() {
        roundtrip_request(Request::Optimize {
            deadline_ms: 250,
            fuel: 1_000_000,
            module: "fn a {\nentry:\n  ret\n}".into(),
        });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
        roundtrip_response(Response::UnitOk {
            index: 3,
            output: "fn a {\nentry:\n  ret\n}".into(),
        });
        roundtrip_response(Response::UnitErr {
            index: 7,
            code: 6,
            name: "slow_fn".into(),
            message: "cancelled at `validate`: fuel exhausted".into(),
        });
        roundtrip_response(Response::Done { ok: 4, failed: 1 });
        roundtrip_response(Response::Error {
            code: ERR_PARSE,
            message: "<request>:3:1: unknown instruction".into(),
        });
        roundtrip_response(Response::Overloaded { retry_after_ms: 50 });
        roundtrip_response(Response::Stats {
            text: "cache: 1 hits".into(),
        });
        roundtrip_response(Response::Bye);
    }

    #[test]
    fn frames_survive_the_wire() {
        let mut wire: Vec<u8> = Vec::new();
        write_request(&mut wire, &Request::Stats).unwrap();
        write_response(&mut wire, &Response::Bye).unwrap();
        let mut r = wire.as_slice();
        let (tag, payload) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(decode_request(tag, &payload).unwrap(), Request::Stats);
        let (tag, payload) = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(decode_response(tag, &payload).unwrap(), Response::Bye);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_length_prefix_is_refused_before_allocation() {
        let mut wire: Vec<u8> = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        wire.extend_from_slice(b"garbage");
        match read_frame(&mut wire.as_slice()) {
            Err(FrameError::TooLarge { len }) => assert_eq!(len, u32::MAX),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_an_io_error_not_a_hang_or_panic() {
        // Promises 100 bytes, delivers 3.
        let mut wire: Vec<u8> = Vec::new();
        wire.extend_from_slice(&100u32.to_be_bytes());
        wire.extend_from_slice(&[REQ_STATS, 0, 0]);
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(FrameError::Io(_))
        ));
        // A torn length prefix is also an error, not a clean close.
        let torn = [0u8, 0];
        assert!(matches!(
            read_frame(&mut torn.as_slice()),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn zero_length_and_unknown_tags_are_typed_errors() {
        let zero = 0u32.to_be_bytes();
        assert!(matches!(
            read_frame(&mut zero.as_slice()),
            Err(FrameError::Empty)
        ));
        assert!(matches!(
            decode_request(0x7f, &[]),
            Err(FrameError::UnknownTag { tag: 0x7f })
        ));
        assert!(matches!(
            decode_response(0x00, &[]),
            Err(FrameError::UnknownTag { tag: 0x00 })
        ));
    }

    #[test]
    fn short_payloads_are_malformed_not_panics() {
        assert!(matches!(
            decode_request(REQ_OPTIMIZE, &[1, 2, 3]),
            Err(FrameError::Malformed { .. })
        ));
        assert!(matches!(
            decode_response(RESP_UNIT_ERR, &[0, 0, 0, 1, 6, 0, 9]),
            Err(FrameError::Malformed { .. })
        ));
        assert!(matches!(
            decode_request(
                REQ_OPTIMIZE,
                &[0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xfe]
            ),
            Err(FrameError::Malformed { .. })
        ));
    }

    #[test]
    fn failure_codes_are_stable_and_named() {
        use crate::FailureKind;
        for kind in [
            FailureKind::InvalidInput,
            FailureKind::Pipeline,
            FailureKind::InvalidOutput,
            FailureKind::Panic,
            FailureKind::PoisonedCache,
            FailureKind::Cancelled,
        ] {
            assert_eq!(failure_code_name(failure_code(kind)), kind.name());
        }
        assert_eq!(failure_code_name(0), "unknown");
    }
}
