//! A work-stealing pool of scoped `std::thread` workers.
//!
//! Hermetic by construction — no channels crate, no rayon. Each worker owns
//! a deque of job indices seeded round-robin; when its own deque drains it
//! steals from the back of a sibling's. Because the job set is fixed up
//! front (jobs never spawn jobs), a worker that finds every deque empty can
//! simply retire.
//!
//! Results are collected **by job index**, so the output order is
//! independent of which worker ran what and of steal timing — this is what
//! makes the batch driver's output byte-identical for every `--jobs` value.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::thread;

/// Runs `job(i)` for `i in 0..n_jobs` on `threads` workers and returns the
/// results in job-index order.
///
/// `threads == 1` (or fewer than two jobs) runs inline on the caller's
/// thread: no pool, no synchronisation, same results.
///
/// `job` must not panic; a panicking job aborts the whole batch when the
/// worker scope joins. The driver wraps each unit in `catch_unwind` before
/// it ever reaches the pool.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn run_indexed<T, F>(threads: usize, n_jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(threads, n_jobs, || (), |(), i| job(i))
}

/// [`run_indexed`] with per-worker mutable state: `init()` runs once on
/// each worker thread (and once inline for the single-threaded path), and
/// every job that worker executes receives `&mut` to the same state.
///
/// This is how the batch driver keeps one
/// [`SolverScratch`](lcm_dataflow::SolverScratch) per worker: O(threads)
/// solver arenas for a whole batch instead of one per function, while the
/// results stay in job-index order regardless of which worker ran what.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn run_indexed_with<S, T, I, F>(threads: usize, n_jobs: usize, init: I, job: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    assert!(threads > 0, "thread count must be at least 1");
    if threads == 1 || n_jobs <= 1 {
        let mut state = init();
        return (0..n_jobs).map(|i| job(&mut state, i)).collect();
    }

    let workers = threads.min(n_jobs);
    // Round-robin initial sharding: job i starts on worker i % workers.
    let shards: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n_jobs).step_by(workers).collect()))
        .collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();

    thread::scope(|scope| {
        for w in 0..workers {
            let shards = &shards;
            let slots = &slots;
            let init = &init;
            let job = &job;
            scope.spawn(move || {
                let mut state = init();
                while let Some(idx) = next_job(shards, w) {
                    let out = job(&mut state, idx);
                    *slots[idx].lock().expect("result slot poisoned") = Some(out);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job index was claimed exactly once")
        })
        .collect()
}

/// The next job for worker `w`: the front of its own shard, else one stolen
/// from the back of the first non-empty sibling (scanning from `w + 1` so
/// steal pressure spreads instead of piling onto worker 0).
fn next_job(shards: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(idx) = shards[w].lock().expect("shard poisoned").pop_front() {
        return Some(idx);
    }
    let n = shards.len();
    for off in 1..n {
        let victim = (w + off) % n;
        if let Some(idx) = shards[victim].lock().expect("shard poisoned").pop_back() {
            return Some(idx);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_index_order() {
        for threads in [1, 2, 4, 8] {
            let out = run_indexed(threads, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(4, 64, |i| counters[i].fetch_add(1, Ordering::Relaxed));
        for c in &counters {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn skewed_work_is_stolen() {
        // Job 0 is long; with 4 workers the other 63 jobs must not wait on
        // worker 0's shard. We can't assert timing on a loaded machine, but
        // we can assert completion and order under skew.
        let out = run_indexed(4, 64, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn per_worker_state_is_initialised_once_per_worker() {
        // Each worker's state counts the jobs it ran; the total must be
        // n_jobs and the number of states at most the worker count.
        use std::sync::Mutex;
        let totals: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        struct Tally<'a> {
            ran: usize,
            totals: &'a Mutex<Vec<usize>>,
        }
        impl Drop for Tally<'_> {
            fn drop(&mut self) {
                self.totals.lock().unwrap().push(self.ran);
            }
        }
        let out = run_indexed_with(
            3,
            32,
            || Tally {
                ran: 0,
                totals: &totals,
            },
            |t, i| {
                t.ran += 1;
                i
            },
        );
        assert_eq!(out, (0..32).collect::<Vec<_>>());
        let totals = totals.into_inner().unwrap();
        assert!(totals.len() <= 3, "one state per worker, got {totals:?}");
        assert_eq!(totals.iter().sum::<usize>(), 32);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(run_indexed(16, 3, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(run_indexed(4, 0, |i| i), Vec::<usize>::new());
    }
}
