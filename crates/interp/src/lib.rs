//! A reference interpreter for the `lcm` IR.
//!
//! The interpreter is the ground truth for every semantic claim in the
//! workspace:
//!
//! * **Correctness (Theorem T1)** — a transformation is admissible only if
//!   the original and transformed functions produce identical observation
//!   traces on every input ([`Execution::trace`]).
//! * **Computational optimality (Theorem T2)** — [`Execution::eval_count`]
//!   counts how often each candidate expression is *dynamically* evaluated;
//!   lazy code motion must never evaluate more than the original program
//!   and must match busy code motion exactly.
//! * **Lifetime optimality (Theorem T3)** — [`dynamic_occupancy`] measures,
//!   over a recorded execution, for how many steps a set of variables
//!   (the introduced temporaries) is holding a value that is still needed.
//!
//! Semantics are total (wrapping arithmetic, division by zero yields 0 —
//! see [`BinOp::eval`](lcm_ir::BinOp::eval)), every variable starts at `0`
//! unless overridden by [`Inputs`], and execution is bounded by fuel, so the
//! interpreter never traps and never diverges.
//!
//! Memory programs run against a *flat addressable heap*: a total map from
//! `i64` addresses to `i64` values, every cell initially `0`. `load`
//! evaluates a [`Mem`](lcm_ir::Expr::Mem) expression (and counts toward
//! [`Execution::eval_count`], so eval-count non-regression covers loads);
//! `store` and the impure call intrinsics (`poke`, `bump`) write cells.
//! Nothing faults: an arbitrary address is simply a cell holding `0` until
//! written. This keeps differential validation and [`Execution::edge_visits`]
//! profiles exact on memory programs.
//!
//! ```
//! use lcm_interp::{run, Inputs};
//! use lcm_ir::parse_function;
//!
//! let f = parse_function(
//!     "fn f {
//!      entry:
//!        x = a + b
//!        obs x
//!        ret
//!      }",
//! )?;
//! let out = run(&f, &Inputs::new().set("a", 2).set("b", 3), 1_000);
//! assert_eq!(out.trace, vec![5]);
//! assert!(out.completed());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;

use lcm_ir::{BlockId, Callee, Expr, Function, Instr, Operand, Rvalue, Terminator, Var};

/// Initial variable values, keyed by *name* so the same inputs can be fed to
/// an original function and its transformed version (whose [`Var`] indices
/// for temporaries differ). Unset variables start at `0`.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Inputs {
    values: HashMap<String, i64>,
}

impl Inputs {
    /// No overrides: every variable starts at `0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `name` to `value` (builder style).
    #[must_use]
    pub fn set(mut self, name: impl Into<String>, value: i64) -> Self {
        self.values.insert(name.into(), value);
        self
    }

    /// Iterates over the overrides.
    pub fn iter(&self) -> impl Iterator<Item = (&str, i64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

impl FromIterator<(String, i64)> for Inputs {
    fn from_iter<I: IntoIterator<Item = (String, i64)>>(iter: I) -> Self {
        Inputs {
            values: iter.into_iter().collect(),
        }
    }
}

/// Why execution stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// The exit block's `ret` was reached.
    Completed,
    /// The fuel budget was exhausted first.
    OutOfFuel,
}

/// The result of running a function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Execution {
    /// Values observed by `obs` instructions, in order.
    pub trace: Vec<i64>,
    /// Why execution stopped.
    pub status: Status,
    /// Instructions executed (including terminators).
    pub steps: u64,
    /// Block visits, indexed by block.
    pub block_visits: Vec<u64>,
    /// CFG edge traversals, indexed by [`EdgeId`](lcm_ir::EdgeId) in the
    /// dense order of [`EdgeList::new`](lcm_ir::EdgeList::new) — a measured
    /// edge profile of the run. On a completed run the counts conserve flow
    /// (every internal block is left as often as it is entered), so they can
    /// be fed back as a [`Profile`](lcm_ir::Profile) without adjustment.
    pub edge_visits: Vec<u64>,
    /// Dynamic evaluation count per candidate expression.
    eval_counts: HashMap<Expr, u64>,
    /// Final variable values, indexed by `Var`.
    env: Vec<i64>,
    /// Final heap contents (only cells ever written appear).
    heap: HashMap<i64, i64>,
}

impl Execution {
    /// Returns `true` if the run reached `ret`.
    pub fn completed(&self) -> bool {
        self.status == Status::Completed
    }

    /// How many times `e` was dynamically evaluated.
    ///
    /// Expression identity is structural over [`Var`] indices, so comparing
    /// counts across two functions is meaningful when the transformed
    /// function *extends* the original's symbol table (which every
    /// transformation in this workspace does).
    pub fn eval_count(&self, e: Expr) -> u64 {
        self.eval_counts.get(&e).copied().unwrap_or(0)
    }

    /// Total dynamic evaluations of all candidate expressions.
    pub fn total_evals(&self) -> u64 {
        self.eval_counts.values().sum()
    }

    /// Total dynamic evaluations of the given expressions only.
    pub fn total_evals_of(&self, exprs: &[Expr]) -> u64 {
        exprs.iter().map(|&e| self.eval_count(e)).sum()
    }

    /// The final value of `v` (0 if never written and not an input).
    pub fn value(&self, v: Var) -> i64 {
        self.env.get(v.index()).copied().unwrap_or(0)
    }

    /// The final value of heap cell `addr` (0 if never written).
    pub fn heap_value(&self, addr: i64) -> i64 {
        self.heap.get(&addr).copied().unwrap_or(0)
    }
}

fn initial_env(f: &Function, inputs: &Inputs) -> Vec<i64> {
    let mut env = vec![0i64; f.symbols.len()];
    for (name, value) in inputs.iter() {
        if let Some(v) = f.symbols.get(name) {
            env[v.index()] = value;
        }
    }
    env
}

fn eval_operand(env: &[i64], op: Operand) -> i64 {
    match op {
        Operand::Var(v) => env[v.index()],
        Operand::Const(c) => c,
    }
}

fn eval_expr(env: &[i64], heap: &HashMap<i64, i64>, e: Expr) -> i64 {
    match e {
        Expr::Un(op, a) => op.eval(eval_operand(env, a)),
        Expr::Bin(op, a, b) => op.eval(eval_operand(env, a), eval_operand(env, b)),
        Expr::Mem(a) => heap.get(&eval_operand(env, a)).copied().unwrap_or(0),
    }
}

/// Evaluates a call intrinsic, mutating the heap for the impure ones.
fn eval_call(heap: &mut HashMap<i64, i64>, callee: Callee, a: i64, b: i64) -> i64 {
    match callee {
        Callee::Min => a.min(b),
        Callee::Max => a.max(b),
        Callee::Poke => {
            let old = heap.get(&a).copied().unwrap_or(0);
            heap.insert(a, b);
            old
        }
        Callee::Bump => {
            let new = heap.get(&a).copied().unwrap_or(0).wrapping_add(b);
            heap.insert(a, new);
            new
        }
    }
}

/// Runs `f` on `inputs` with at most `fuel` executed instructions.
///
/// Fuel counts every instruction and terminator, so a run over a
/// non-terminating loop stops deterministically with [`Status::OutOfFuel`].
pub fn run(f: &Function, inputs: &Inputs, fuel: u64) -> Execution {
    let mut recorder = ();
    run_with(f, inputs, fuel, &mut recorder)
}

/// An observer receiving every executed instruction, used by
/// [`dynamic_occupancy`] and available for custom instrumentation.
pub trait Recorder {
    /// Called for each executed straight-line instruction.
    fn instr(&mut self, block: BlockId, index: usize, instr: Instr);
}

impl Recorder for () {
    fn instr(&mut self, _: BlockId, _: usize, _: Instr) {}
}

impl Recorder for Vec<Instr> {
    fn instr(&mut self, _: BlockId, _: usize, instr: Instr) {
        self.push(instr);
    }
}

/// Like [`run`], additionally streaming every executed instruction into
/// `recorder`.
pub fn run_with(
    f: &Function,
    inputs: &Inputs,
    fuel: u64,
    recorder: &mut dyn Recorder,
) -> Execution {
    let mut env = initial_env(f, inputs);
    let mut heap: HashMap<i64, i64> = HashMap::new();
    let mut trace = Vec::new();
    let mut eval_counts: HashMap<Expr, u64> = HashMap::new();
    let mut block_visits = vec![0u64; f.num_blocks()];
    // Dense edge numbering is block-major, successor-minor, so the id of
    // edge (block, succ_index) is edge_base[block] + succ_index.
    let mut edge_base = Vec::with_capacity(f.num_blocks());
    let mut num_edges = 0usize;
    for b in f.block_ids() {
        edge_base.push(num_edges);
        num_edges += f.block(b).term.successors().count();
    }
    let mut edge_visits = vec![0u64; num_edges];
    let mut steps = 0u64;
    let mut block = f.entry();
    let status = 'outer: loop {
        block_visits[block.index()] += 1;
        let data = f.block(block);
        for (i, &instr) in data.instrs.iter().enumerate() {
            if steps >= fuel {
                break 'outer Status::OutOfFuel;
            }
            steps += 1;
            recorder.instr(block, i, instr);
            match instr {
                Instr::Assign { dst, rv } => {
                    let value = match rv {
                        Rvalue::Operand(op) => eval_operand(&env, op),
                        Rvalue::Expr(e) => {
                            *eval_counts.entry(e).or_insert(0) += 1;
                            eval_expr(&env, &heap, e)
                        }
                    };
                    env[dst.index()] = value;
                }
                Instr::Observe(op) => trace.push(eval_operand(&env, op)),
                Instr::Store { addr, val } => {
                    heap.insert(eval_operand(&env, addr), eval_operand(&env, val));
                }
                Instr::Call { dst, callee, args } => {
                    let a = eval_operand(&env, args[0]);
                    let b = eval_operand(&env, args[1]);
                    let value = eval_call(&mut heap, callee, a, b);
                    if let Some(dst) = dst {
                        env[dst.index()] = value;
                    }
                }
            }
        }
        if steps >= fuel {
            break Status::OutOfFuel;
        }
        steps += 1;
        match data.term {
            Terminator::Jump(t) => {
                edge_visits[edge_base[block.index()]] += 1;
                block = t;
            }
            Terminator::Branch {
                cond,
                then_to,
                else_to,
            } => {
                let taken_else = eval_operand(&env, cond) == 0;
                edge_visits[edge_base[block.index()] + usize::from(taken_else)] += 1;
                block = if taken_else { else_to } else { then_to };
            }
            Terminator::Exit => break Status::Completed,
        }
    };
    Execution {
        trace,
        status,
        steps,
        block_visits,
        edge_visits,
        eval_counts,
        env,
        heap,
    }
}

/// Both sides of an equivalence check ran out of fuel, so the verdict is
/// indeterminate: neither trace is complete, and prefix agreement is
/// necessary but not sufficient for equivalence.
///
/// Returned by [`observational_equivalence`]; the boolean-valued
/// [`observationally_equivalent`] collapses this case to `prefix_agrees`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BothDiverged {
    /// Whether the common prefix of the two (truncated) traces agreed.
    pub prefix_agrees: bool,
    /// Steps the first function executed before exhausting its fuel.
    pub steps_lhs: u64,
    /// Steps the second function executed before exhausting its fuel.
    pub steps_rhs: u64,
}

impl std::fmt::Display for BothDiverged {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "equivalence indeterminate: both executions exhausted their fuel \
             ({} and {} steps; common trace prefix {})",
            self.steps_lhs,
            self.steps_rhs,
            if self.prefix_agrees {
                "agrees"
            } else {
                "DISAGREES"
            }
        )
    }
}

impl std::error::Error for BothDiverged {}

/// Compares two functions on one input: their observation traces must agree
/// on the longest prefix both produced, and if both complete they must agree
/// exactly. This is the correctness oracle for Theorem T1: a sound
/// transformation can change instruction counts but never what is observed.
///
/// When *both* executions run out of fuel the comparison is indeterminate;
/// this function then reports mere prefix agreement. Callers that must not
/// confuse "equivalent" with "ran out of evidence" (the pipeline validator)
/// should use [`observational_equivalence`] instead.
pub fn observationally_equivalent(f: &Function, g: &Function, inputs: &Inputs, fuel: u64) -> bool {
    match observational_equivalence(f, g, inputs, fuel) {
        Ok(equal) => equal,
        Err(diverged) => diverged.prefix_agrees,
    }
}

/// Like [`observationally_equivalent`], but distinguishes the indeterminate
/// case: when both executions exhaust their fuel, no finite prefix can
/// prove equivalence, so that outcome is a [`BothDiverged`] error instead of
/// a boolean.
///
/// # Errors
///
/// Returns [`BothDiverged`] when neither execution completes within `fuel`.
pub fn observational_equivalence(
    f: &Function,
    g: &Function,
    inputs: &Inputs,
    fuel: u64,
) -> Result<bool, BothDiverged> {
    let a = run(f, inputs, fuel);
    let b = run(g, inputs, fuel);
    if a.completed() && b.completed() {
        return Ok(a.trace == b.trace);
    }
    let n = a.trace.len().min(b.trace.len());
    let prefix_agrees = a.trace[..n] == b.trace[..n];
    if !a.completed() && !b.completed() {
        return Err(BothDiverged {
            prefix_agrees,
            steps_lhs: a.steps,
            steps_rhs: b.steps,
        });
    }
    Ok(prefix_agrees)
}

/// Measures the *dynamic occupancy* of the variables in `vars` during a run
/// of `f`: the total number of executed instructions during which at least
/// one of the variables holds a value with a future use in the same run.
///
/// This is the dynamic analogue of register pressure restricted to a set of
/// temporaries; Theorem T3 (lifetime optimality) predicts that lazy code
/// motion's temporaries occupy no more than busy code motion's.
pub fn dynamic_occupancy(f: &Function, inputs: &Inputs, fuel: u64, vars: &[Var]) -> u64 {
    let mut stream: Vec<Instr> = Vec::new();
    let _ = run_with(f, inputs, fuel, &mut stream);
    let interesting = |v: Var| vars.contains(&v);

    // Walk the executed stream backwards, tracking which tracked variables
    // are live (will be read before being overwritten).
    let mut live: Vec<bool> = vec![false; f.symbols.len()];
    let mut occupancy = 0u64;
    for instr in stream.iter().rev() {
        if let Some(dst) = instr.def() {
            if interesting(dst) {
                live[dst.index()] = false;
            }
        }
        for used in instr.uses() {
            if interesting(used) {
                live[used.index()] = true;
            }
        }
        if live.iter().any(|&l| l) {
            occupancy += 1;
        }
    }
    occupancy
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_ir::parse_function;

    fn counting_loop() -> Function {
        parse_function(
            "fn l {
             entry:
               i = 3
               jmp head
             head:
               br i, body, done
             body:
               x = a + b
               obs x
               i = i - 1
               jmp head
             done:
               ret
             }",
        )
        .unwrap()
    }

    #[test]
    fn loop_runs_to_completion() {
        let f = counting_loop();
        let out = run(&f, &Inputs::new().set("a", 4).set("b", 6), 1_000);
        assert!(out.completed());
        assert_eq!(out.trace, vec![10, 10, 10]);
        let a_plus_b = f.expr_universe()[0];
        assert_eq!(out.eval_count(a_plus_b), 3);
        assert_eq!(out.total_evals(), 6); // 3× a+b, 3× i-1
        let head = f.block_by_name("head").unwrap();
        assert_eq!(out.block_visits[head.index()], 4);
    }

    #[test]
    fn edge_visits_match_edge_list_order_and_conserve_flow() {
        let f = counting_loop();
        let out = run(&f, &Inputs::new(), 1_000);
        assert!(out.completed());
        let edges = lcm_ir::EdgeList::new(&f);
        assert_eq!(out.edge_visits.len(), edges.len());
        // entry->head 1, head->body 3, head->done 1, body->head 3.
        assert_eq!(out.edge_visits, vec![1, 3, 1, 3]);
        // A completed run is a valid flow: it parses back as a profile.
        let p = lcm_ir::Profile::from_weights(&f, &out.edge_visits);
        assert_eq!(p.resolve(&f).unwrap(), out.edge_visits);
        // Block visits are consistent with the edges taken into each block.
        for b in f.block_ids() {
            let incoming: u64 = edges
                .incoming(b)
                .iter()
                .map(|id| out.edge_visits[id.index()])
                .sum();
            let expected = incoming + u64::from(b == f.entry());
            assert_eq!(out.block_visits[b.index()], expected);
        }
    }

    #[test]
    fn heap_semantics_are_total_and_observable() {
        let f = parse_function(
            "fn h {
             entry:
               x = load p        # unwritten cell reads 0
               obs x
               store p, 7
               y = load p
               obs y
               old = call poke(p, 9)
               obs old
               z = call bump(p, 2)
               obs z
               q = load 5        # constant address, distinct cell
               obs q
               m = call min(y, z)
               obs m
               ret
             }",
        )
        .unwrap();
        let out = run(&f, &Inputs::new().set("p", 100), 1_000);
        assert!(out.completed());
        assert_eq!(out.trace, vec![0, 7, 7, 11, 0, 7]);
        assert_eq!(out.heap_value(100), 11);
        assert_eq!(out.heap_value(5), 0);
        // Loads count as candidate evaluations.
        let load_p = f
            .expr_universe()
            .into_iter()
            .find(|e| matches!(e, Expr::Mem(Operand::Var(_))))
            .unwrap();
        assert_eq!(out.eval_count(load_p), 2);
    }

    #[test]
    fn stores_kill_loads_dynamically() {
        // The same load before and after an aliasing store observes
        // different values — the fact TRANSP must account for.
        let f = parse_function(
            "fn k {
             entry:
               a = load p
               store q, 1
               b = load p
               obs a
               obs b
               ret
             }",
        )
        .unwrap();
        // p and q alias (same address): the second load sees the store.
        let out = run(&f, &Inputs::new().set("p", 3).set("q", 3), 100);
        assert_eq!(out.trace, vec![0, 1]);
        // Distinct addresses: the store is invisible to the load.
        let out = run(&f, &Inputs::new().set("p", 3).set("q", 4), 100);
        assert_eq!(out.trace, vec![0, 0]);
    }

    #[test]
    fn fuel_bounds_divergent_loops() {
        let f = parse_function(
            "fn d {
             entry:
               jmp spin
             spin:
               obs x
               br 1, spin, done
             done:
               ret
             }",
        )
        .unwrap();
        let out = run(&f, &Inputs::new(), 100);
        assert_eq!(out.status, Status::OutOfFuel);
        assert_eq!(out.steps, 100);
        assert!(!out.trace.is_empty());
    }

    #[test]
    fn assignment_order_matches_paper_semantics() {
        // `a = a + b` evaluates with the old `a`.
        let f = parse_function(
            "fn s {
             entry:
               a = a + b
               obs a
               a = a + b
               obs a
               ret
             }",
        )
        .unwrap();
        let out = run(&f, &Inputs::new().set("a", 1).set("b", 10), 100);
        assert_eq!(out.trace, vec![11, 21]);
    }

    #[test]
    fn inputs_default_to_zero() {
        let f = parse_function("fn z {\nentry:\n  obs q\n  ret\n}").unwrap();
        let out = run(&f, &Inputs::new(), 10);
        assert_eq!(out.trace, vec![0]);
        assert_eq!(out.value(f.symbols.get("q").unwrap()), 0);
    }

    #[test]
    fn equivalence_oracle_accepts_itself_and_rejects_difference() {
        let f = counting_loop();
        let inputs = Inputs::new().set("a", 1).set("b", 2);
        assert!(observationally_equivalent(&f, &f, &inputs, 1_000));
        let g = parse_function(
            "fn g {
             entry:
               obs a
               ret
             }",
        )
        .unwrap();
        assert!(!observationally_equivalent(&f, &g, &inputs, 1_000));
    }

    #[test]
    fn equivalence_compares_prefixes_under_fuel() {
        // Same program, one padded with extra copies: same observations,
        // different step counts. Must still be judged equivalent at any fuel.
        let f = parse_function(
            "fn f {
             entry:
               jmp spin
             spin:
               obs k
               k = k + 1
               br 1, spin, done
             done:
               ret
             }",
        )
        .unwrap();
        let g = parse_function(
            "fn g {
             entry:
               jmp spin
             spin:
               pad0 = 0
               pad1 = 0
               obs k
               k = k + 1
               br 1, spin, done
             done:
               ret
             }",
        )
        .unwrap();
        for fuel in [10, 100, 1000] {
            assert!(observationally_equivalent(&f, &g, &Inputs::new(), fuel));
            // The checked variant refuses to call a double-divergence
            // "equivalent": it reports the indeterminacy as an error, while
            // still recording that the prefixes agreed.
            let err = observational_equivalence(&f, &g, &Inputs::new(), fuel).unwrap_err();
            assert!(err.prefix_agrees);
            assert!(err.steps_lhs > 0 && err.steps_rhs > 0);
            assert!(err.to_string().contains("indeterminate"));
        }
    }

    #[test]
    fn checked_equivalence_is_ok_when_either_side_completes() {
        // One side completes: the verdict is determined by prefix agreement
        // and must not be reported as indeterminate.
        let f = parse_function(
            "fn f {
             entry:
               obs k
               ret
             }",
        )
        .unwrap();
        let g = parse_function(
            "fn g {
             entry:
               jmp spin
             spin:
               obs k
               br 1, spin, done
             done:
               ret
             }",
        )
        .unwrap();
        assert_eq!(
            observational_equivalence(&f, &g, &Inputs::new(), 10),
            Ok(true)
        );
        assert_eq!(
            observational_equivalence(&f, &f, &Inputs::new(), 1_000),
            Ok(true)
        );
    }

    #[test]
    fn occupancy_counts_def_to_last_use_spans() {
        // t is defined, then two unrelated instructions, then used:
        // live across 3 instructions (the def itself is not counted —
        // liveness is evaluated after processing each instruction in the
        // backward walk, with the use instruction included).
        let f = parse_function(
            "fn o {
             entry:
               t = a + b
               u = 1
               v = 2
               x = t + 1
               obs x
               ret
             }",
        )
        .unwrap();
        let t = f.symbols.get("t").unwrap();
        let occ = dynamic_occupancy(&f, &Inputs::new(), 100, &[t]);
        assert_eq!(occ, 3); // u=1, v=2, x=t+1
                            // A variable never used afterwards occupies nothing.
        let v = f.symbols.get("v").unwrap();
        assert_eq!(dynamic_occupancy(&f, &Inputs::new(), 100, &[v]), 0);
    }

    #[test]
    fn occupancy_in_loops_accumulates() {
        let f = counting_loop();
        let a = f.symbols.get("a").unwrap();
        let occ = dynamic_occupancy(&f, &Inputs::new(), 1_000, &[a]);
        assert!(occ > 0);
    }
}
