//! Seeded fault injection for the LCM pipeline.
//!
//! The validator in [`lcm_core::validate`] exists to catch exactly the
//! failure modes a PRE implementation can develop: a corrupted fixpoint
//! bit, an insertion dropped or duplicated between planning and
//! materialisation, a mis-targeted edge split, a mangled terminator. This
//! crate makes those failure modes *injectable* — each [`Fault`] is a
//! deterministic corruptor over an [`Optimized`] result — and its test
//! suite is the mutation harness: for every fault class, inject it and
//! assert that [`validate_optimized`](lcm_core::validate::validate_optimized)
//! rejects the result with the error the class predicts.
//!
//! Corruptors are seeded, never random: the same `(fault, seed)` pair
//! produces the same corruption, so a failing run reproduces exactly.
//!
//! This crate is a test harness, not part of the optimizer: nothing in the
//! pipeline depends on it.

use lcm_core::{
    apply_plan, lazy_edge_plan_with, ExprUniverse, GlobalAnalyses, IncrementalState,
    LocalPredicates, Optimized, PipelineError, PreAlgorithm,
};
use lcm_dataflow::{CfgView, SolveStrategy, SolverScratch};
use lcm_driver::PlanCache;
use lcm_ir::{BlockData, BlockId, Expr, Function, Instr, Profile, Rvalue, Terminator, Var};

/// One class of seeded corruption, modelling a distinct implementation
/// bug in a PRE pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Flip a bit of the placement plan: claim an insertion on the
    /// virtual entry edge that the analyses never justified. Models a
    /// corrupted fixpoint word. Caught by the admissibility check
    /// (`INSERT ⊆ ANTIN ∪ AVOUT`) or, for the edge formulation, the
    /// `INSERT ⊆ LATER` re-check — provided the flipped point is in fact
    /// unsafe in the subject function.
    FlipPlanBit,
    /// Remove one materialised `t := e` insertion from the output while
    /// leaving the plan and the rewriter's statistics untouched. Models a
    /// lost insertion between planning and rewriting. Caught by definite
    /// assignment or the insertion bookkeeping count.
    DropInsertion,
    /// Duplicate one materialised `t := e` insertion in place. Models a
    /// double-applied plan entry. Caught by the insertion bookkeeping
    /// count (and by eval-count regression under full validation).
    DuplicateInsertion,
    /// Re-route the predecessor of a materialised edge-split block
    /// straight to the split's successor, orphaning the split block (and
    /// the insertion it hosts). Models a split whose predecessor
    /// retargeting was forgotten. Caught by structural re-verification
    /// (`Unreachable`).
    MistargetSplit,
    /// Overwrite one block's terminator with a jump to a block id outside
    /// the block table. Models plain CFG corruption. Caught by structural
    /// re-verification (`DanglingTarget`).
    CorruptTerminator,
}

impl Fault {
    /// Every fault class, for exhaustive mutation loops.
    pub const ALL: [Fault; 5] = [
        Fault::FlipPlanBit,
        Fault::DropInsertion,
        Fault::DuplicateInsertion,
        Fault::MistargetSplit,
        Fault::CorruptTerminator,
    ];

    /// Stable name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Fault::FlipPlanBit => "flip-plan-bit",
            Fault::DropInsertion => "drop-insertion",
            Fault::DuplicateInsertion => "duplicate-insertion",
            Fault::MistargetSplit => "mistarget-split",
            Fault::CorruptTerminator => "corrupt-terminator",
        }
    }
}

/// Deterministic splitmix64 step — the harness's only entropy source.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Locations of the materialised temp-defining insertions in `opt`'s
/// output, in block order.
fn temp_def_sites(opt: &Optimized) -> Vec<(BlockId, usize)> {
    let temps: Vec<Var> = opt.transform.temp_vars();
    let mut sites = Vec::new();
    for b in opt.function.block_ids() {
        for (i, instr) in opt.function.block(b).instrs.iter().enumerate() {
            if matches!(instr, Instr::Assign { dst, rv: Rvalue::Expr(_) }
                        if temps.contains(dst))
            {
                sites.push((b, i));
            }
        }
    }
    sites
}

/// Replaces `old` with `new` in every arm of `term`, returning whether
/// anything changed.
fn retarget(term: &mut Terminator, old: BlockId, new: BlockId) -> bool {
    match term {
        Terminator::Jump(t) if *t == old => {
            *t = new;
            true
        }
        Terminator::Branch {
            then_to, else_to, ..
        } => {
            let mut hit = false;
            if *then_to == old {
                *then_to = new;
                hit = true;
            }
            if *else_to == old {
                *else_to = new;
                hit = true;
            }
            hit
        }
        _ => false,
    }
}

/// Applies one seeded corruption to `opt` in place.
///
/// Returns `false` when the fault class does not apply to this result
/// (e.g. dropping an insertion from a pass that inserted nothing) and
/// `opt` is left untouched; `true` when the corruption landed.
pub fn inject(opt: &mut Optimized, fault: Fault, seed: u64) -> bool {
    let mut state = seed ^ 0x5EED_FA17_u64;
    match fault {
        Fault::FlipPlanBit => {
            let uni_len = opt.plan.entry_insert.capacity();
            if uni_len == 0 {
                return false;
            }
            // Claim an entry insertion the analyses never produced.
            let start = (splitmix64(&mut state) % uni_len as u64) as usize;
            for off in 0..uni_len {
                let bit = (start + off) % uni_len;
                if !opt.plan.entry_insert.contains(bit) {
                    opt.plan.entry_insert.insert(bit);
                    return true;
                }
            }
            false
        }
        Fault::DropInsertion => {
            let sites = temp_def_sites(opt);
            if sites.is_empty() {
                return false;
            }
            let (b, i) = sites[(splitmix64(&mut state) % sites.len() as u64) as usize];
            opt.function.block_mut(b).instrs.remove(i);
            true
        }
        Fault::DuplicateInsertion => {
            let sites = temp_def_sites(opt);
            if sites.is_empty() {
                return false;
            }
            let (b, i) = sites[(splitmix64(&mut state) % sites.len() as u64) as usize];
            let dup = opt.function.block(b).instrs[i];
            opt.function.block_mut(b).instrs.insert(i, dup);
            true
        }
        Fault::MistargetSplit => {
            let splits: Vec<BlockId> = opt
                .function
                .block_ids()
                .filter(|&b| opt.function.block(b).name.contains(".split"))
                .collect();
            if splits.is_empty() {
                return false;
            }
            let split = splits[(splitmix64(&mut state) % splits.len() as u64) as usize];
            let Terminator::Jump(succ) = opt.function.block(split).term else {
                return false;
            };
            let mut hit = false;
            for b in opt.function.block_ids().collect::<Vec<_>>() {
                if b != split && retarget(&mut opt.function.block_mut(b).term, split, succ) {
                    hit = true;
                }
            }
            hit
        }
        Fault::CorruptTerminator => {
            let n = opt.function.num_blocks();
            let b = BlockId::from_index((splitmix64(&mut state) % n as u64) as usize);
            opt.function.block_mut(b).term = Terminator::Jump(BlockId::from_index(n + 7));
            true
        }
    }
}

/// Corrupts the cached optimization result for `f` in place, modelling a
/// poisoned (or bit-rotted) plan-cache entry in the batch driver.
///
/// The entry is addressed the same way the driver addresses it — by the
/// content [`fingerprint`](lcm_driver::fingerprint) of `f` — and the
/// corruption is applied by [`inject`] to the stored [`Optimized`] result,
/// which is exactly the state hit-revalidation re-checks. The entry's
/// rendered output text is left untouched: a poisoned entry *looks*
/// servable, and only the validator can tell it is not.
///
/// Returns `false` when the cache holds no entry for `f` or the fault
/// class does not apply to the cached result; the cache is then unchanged.
pub fn poison_cached_plan(cache: &mut PlanCache, f: &Function, fault: Fault, seed: u64) -> bool {
    let (key, _) = lcm_driver::fingerprint(f);
    let Some(entry) = cache.entry_mut(key) else {
        return false;
    };
    // Thin (disk-loaded) entries carry no plan to poison; their corruption
    // classes live in [`CacheFileFault`] instead.
    let Some(origin) = entry.origin.as_deref_mut() else {
        return false;
    };
    inject(&mut origin.opt, fault, seed)
}

/// One class of seeded corruption of an `lcm-cache-v1` *file* (see
/// [`lcm_driver::save_cache`]), modelling the ways a persisted plan cache
/// rots on disk: torn writes, bit flips, format drift, tampered counters,
/// and appended garbage. Every class must be refused by
/// [`lcm_driver::load_cache`] and quarantined by
/// [`lcm_driver::load_or_quarantine`]; the faults test suite proves it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheFileFault {
    /// Cut the file to a seeded strict prefix (possibly empty). Models a
    /// torn write — the failure the atomic temp-then-rename protocol
    /// exists to prevent, so finding one means the protocol was bypassed.
    Truncate,
    /// Flip one seeded bit past the magic and version words (which have
    /// their own classes below). Models media bit-rot. Always detected:
    /// a single-byte change cannot preserve an FNV-1a entry or footer
    /// checksum, and length-field damage runs the reader off the rails.
    FlipByte,
    /// Bump the format version word. Models reading a future (or mangled)
    /// format with today's code.
    VersionSkew,
    /// Overwrite the leading magic. Models pointing the daemon at a file
    /// that is not a cache at all.
    MagicSmash,
    /// Perturb one byte of the footer's lifetime counters without fixing
    /// the footer checksum. Models stats tampering or localised rot.
    CounterTamper,
    /// Append seeded junk after the footer checksum. Models a partial
    /// overwrite by a longer stale file.
    TrailingGarbage,
}

impl CacheFileFault {
    /// Every file-fault class, for exhaustive mutation loops.
    pub const ALL: [CacheFileFault; 6] = [
        CacheFileFault::Truncate,
        CacheFileFault::FlipByte,
        CacheFileFault::VersionSkew,
        CacheFileFault::MagicSmash,
        CacheFileFault::CounterTamper,
        CacheFileFault::TrailingGarbage,
    ];

    /// Stable name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            CacheFileFault::Truncate => "truncate",
            CacheFileFault::FlipByte => "flip-byte",
            CacheFileFault::VersionSkew => "version-skew",
            CacheFileFault::MagicSmash => "magic-smash",
            CacheFileFault::CounterTamper => "counter-tamper",
            CacheFileFault::TrailingGarbage => "trailing-garbage",
        }
    }
}

/// Applies one seeded corruption to the cache file at `path` in place.
///
/// Returns `Ok(false)` (file untouched) when the class does not apply —
/// the file is too short to host that corruption; `Ok(true)` when it
/// landed. Same `(fault, seed)` over the same bytes produces the same
/// corrupted file.
///
/// # Errors
///
/// Any I/O error reading or rewriting the file.
pub fn corrupt_cache_file(
    path: &std::path::Path,
    fault: CacheFileFault,
    seed: u64,
) -> std::io::Result<bool> {
    let mut bytes = std::fs::read(path)?;
    let mut state = seed ^ 0x5EED_FA17_u64;
    let landed = match fault {
        CacheFileFault::Truncate => {
            if bytes.is_empty() {
                false
            } else {
                let keep = (splitmix64(&mut state) % bytes.len() as u64) as usize;
                bytes.truncate(keep);
                true
            }
        }
        CacheFileFault::FlipByte => {
            // Offsets 0..12 are the magic and version words; damage there
            // is modelled by MagicSmash and VersionSkew.
            if bytes.len() <= 12 {
                false
            } else {
                let i = 12 + (splitmix64(&mut state) % (bytes.len() - 12) as u64) as usize;
                bytes[i] ^= 1 << (splitmix64(&mut state) % 8);
                true
            }
        }
        CacheFileFault::VersionSkew => {
            if bytes.len() < 12 {
                false
            } else {
                let v = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
                bytes[8..12].copy_from_slice(&v.wrapping_add(1).to_le_bytes());
                true
            }
        }
        CacheFileFault::MagicSmash => {
            if bytes.len() < 8 {
                false
            } else {
                bytes[..8].copy_from_slice(b"NOTCACHE");
                true
            }
        }
        CacheFileFault::CounterTamper => {
            // The footer is the trailing 64 bytes: 8 magic + 48 counters +
            // 8 checksum. Perturb one counter byte, leave the checksum.
            if bytes.len() < 64 {
                false
            } else {
                let base = bytes.len() - 56;
                let i = base + (splitmix64(&mut state) % 48) as usize;
                bytes[i] = bytes[i].wrapping_add(1);
                true
            }
        }
        CacheFileFault::TrailingGarbage => {
            let n = 1 + (splitmix64(&mut state) % 64) as usize;
            for _ in 0..n {
                bytes.push(splitmix64(&mut state) as u8);
            }
            true
        }
    };
    if landed {
        std::fs::write(path, &bytes)?;
    }
    Ok(landed)
}

/// Runs the fused LCM pipeline on `f` with a [`SolverScratch`] that is
/// corrupted at a reuse boundary — the scratch-sharing bug the batch
/// driver's per-worker arenas could develop. The corruption is
/// [`SolverScratch::poison_for_fault_injection`]: XOR-scramble the state
/// matrices and arm the scratch to skip its next value reinitialisation,
/// which is exactly what a broken `prepare()` would do.
///
/// The poison is planted at the most *observable* reuse boundary, between
/// the global analyses and the LATER solve: a must-problem restarted from
/// scrambled state settles at (or below) a fixpoint **under** the true
/// one, so a corrupted LATERIN turns real deletions loose without the
/// insertions that justify them — an invalid output the fast validation
/// tier must refuse. (Planting it at the *function* boundary instead
/// lands on the availability solve, where an under-approximated fixpoint
/// only makes placement more conservative: the output is still a correct
/// program, and the only loud failure mode is solver divergence. The
/// faults suite pins that dichotomy separately.)
///
/// Returns the wrong-but-plausible result for the caller's validator to
/// refuse; `scratch` is left behind for recovery checks.
///
/// # Errors
///
/// Propagates [`PipelineError`] if the poisoned solve diverges outright —
/// the other legitimate way for the corruption to surface.
pub fn optimize_with_poisoned_scratch(
    f: &Function,
    seed: u64,
    scratch: &mut SolverScratch,
) -> Result<Optimized, PipelineError> {
    let strategy = SolveStrategy::default();
    let uni = ExprUniverse::of(f);
    let local = LocalPredicates::compute(f, &uni);
    let view = CfgView::new(f);
    let ga = GlobalAnalyses::compute_with(f, &uni, &local, &view, strategy, scratch)?;
    scratch.poison_for_fault_injection(seed);
    let lazy = lazy_edge_plan_with(f, &uni, &local, &ga, &view, strategy, scratch)?;
    let transform = apply_plan(f, &uni, &local, &lazy.plan);
    Ok(Optimized {
        function: transform.function.clone(),
        transform,
        plan: lazy.plan,
        input: f.clone(),
        algorithm: PreAlgorithm::LazyEdge,
        pipeline_stats: None,
        spec: None,
    })
}

/// The product of [`optimize_with_dropped_store_kill`]: the
/// wrong-but-plausible result plus the corrupted predicate table the plan
/// was derived from, so tests can aim
/// [`check_memory_kills`](lcm_core::check_memory_kills) at the exact state
/// a memory-kill-dropping implementation would present.
pub struct DroppedStoreKill {
    /// The optimization result planned over the corrupted predicates.
    pub opt: Optimized,
    /// The predicates with one killer block's memory kills dropped.
    pub corrupted: LocalPredicates,
}

/// Runs the edge-formulation pipeline on `f` with the alias-aware memory
/// kill *dropped* in one seeded killer block: the block's `TRANSP` gets
/// its `Mem` bits back (and its `KILL` loses them), exactly as if the
/// implementation forgot that a `store` or impure `call` may write any
/// heap cell. The planner then sees loads as loop-invariant across
/// may-alias stores and will happily hoist them — the memory bug this PR's
/// validator rule exists to catch.
///
/// Returns `Ok(None)` when the fault does not apply: `f` has no load
/// expressions or no memory-writing instructions.
///
/// # Errors
///
/// Propagates [`PipelineError`] if a solve over the corrupted predicates
/// diverges.
pub fn optimize_with_dropped_store_kill(
    f: &Function,
    seed: u64,
) -> Result<Option<DroppedStoreKill>, PipelineError> {
    let uni = ExprUniverse::of(f);
    let mem: Vec<usize> = uni
        .iter()
        .filter(|(_, e)| matches!(e, Expr::Mem(_)))
        .map(|(i, _)| i)
        .collect();
    if mem.is_empty() {
        return Ok(None);
    }
    let killers: Vec<usize> = f
        .block_ids()
        .filter(|&b| f.block(b).instrs.iter().any(|i| i.kills_memory()))
        .map(|b| b.index())
        .collect();
    if killers.is_empty() {
        return Ok(None);
    }
    let mut local = LocalPredicates::compute(f, &uni);
    let mut state = seed ^ 0x5EED_FA17_u64;
    let b = killers[(splitmix64(&mut state) % killers.len() as u64) as usize];
    for &e in &mem {
        local.transp[b].insert(e);
        local.kill[b].remove(e);
    }
    let strategy = SolveStrategy::default();
    let mut scratch = SolverScratch::new();
    let view = CfgView::new(f);
    let ga = GlobalAnalyses::compute_with(f, &uni, &local, &view, strategy, &mut scratch)?;
    let lazy = lazy_edge_plan_with(f, &uni, &local, &ga, &view, strategy, &mut scratch)?;
    let transform = apply_plan(f, &uni, &local, &lazy.plan);
    Ok(Some(DroppedStoreKill {
        opt: Optimized {
            function: transform.function.clone(),
            transform,
            plan: lazy.plan,
            input: f.clone(),
            algorithm: PreAlgorithm::LazyEdge,
            pipeline_stats: None,
            spec: None,
        },
        corrupted: local,
    }))
}

/// Scrambles the retained AVAIL/ANTIC/LATER fixpoints of an
/// [`IncrementalState`] in place — modelling a daemon's per-function
/// `PrevSolve` state rotting (or bleeding) between requests, the
/// incremental twin of scratch poisoning. The scramble is seeded and
/// always lands; shape invariants are preserved, so the poisoned state is
/// *plausible*: the delta solver will happily reuse it, and only the
/// unconditional fast-tier validation inside `optimize_incremental` (or a
/// loud solver divergence) stands between the garbage and the output. The
/// faults suite pins that dichotomy: every poisoned run is caught or
/// bit-identical to fresh, never silently wrong.
pub fn poison_prev_solve(state: &mut IncrementalState, seed: u64) {
    state.poison_solutions(seed);
}

/// Corrupts a retained zero-dirty output memo in place — seeded garbage
/// over the memoized output text and, when `stale_key`, a flipped
/// fingerprint key, modelling a memo that outlived the revision it was
/// minted for. The driver's defense is *keying*, not re-validation: a memo
/// is replayed only when the function's content fingerprint and options
/// tag both match exactly, so a dirty function can never meet the garbage
/// (its fingerprint differs) and a stale key can never be served (nothing
/// fingerprints to it). The faults suite pins both halves.
pub fn poison_output_memo(prev: &mut lcm_driver::PrevSolve, seed: u64, stale_key: bool) {
    let mut state = seed ^ 0x5EED_FA17_u64;
    prev.output_text = format!("; poisoned memo {:016x}\n", splitmix64(&mut state));
    if stale_key {
        prev.key ^= 1 | (u128::from(splitmix64(&mut state)) << 64);
    }
}

/// Corrupts one weight of an edge profile in place — modelling bit-rot or
/// a buggy profiler writing the textual profile section the driver later
/// trusts. The perturbation is seeded and always *lands* (the chosen
/// weight provably changes); whether it is *detectable* depends on the
/// CFG — on a block with a single in- and out-edge the result may still
/// conserve flow and parse cleanly, which is exactly why the speculative
/// planner must stay safe under arbitrary weights, not merely reject
/// inconsistent ones. The faults suite pins both halves: inconsistent
/// corruptions are refused by [`Profile::resolve`], and consistent ones
/// still validate and pass differential execution.
///
/// Returns `false` (profile untouched) when there are no entries to
/// corrupt.
pub fn corrupt_profile_weights(profile: &mut Profile, seed: u64) -> bool {
    let n = profile.entries.len();
    if n == 0 {
        return false;
    }
    let mut state = seed ^ 0x5EED_FA17_u64;
    let i = (splitmix64(&mut state) % n as u64) as usize;
    let delta = 1 + splitmix64(&mut state) % 1000;
    let w = &mut profile.entries[i].weight;
    *w = if splitmix64(&mut state).is_multiple_of(2) {
        w.saturating_add(delta)
    } else {
        w.checked_sub(delta).unwrap_or(w.wrapping_add(delta))
    };
    true
}

/// Appends an orphan block that jumps to the exit — the residue of a
/// split whose predecessor was never retargeted, for subjects where no
/// real split block exists. Always applicable.
pub fn inject_orphan_block(opt: &mut Optimized) {
    let exit = opt.function.exit();
    let mut data = BlockData::new("orphan.split");
    data.term = Terminator::Jump(exit);
    opt.function.add_block(data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_core::validate::{validate_optimized, ValidationError, ValidationLevel};
    use lcm_core::{optimize, PreAlgorithm};
    use lcm_ir::{parse_function, VerifyError};

    const DIAMOND: &str = "fn d {
        entry:
          br c, l, r
        l:
          x = a + b
          jmp join
        r:
          jmp join
        join:
          y = a + b
          obs y
          ret
        }";

    /// `a` is redefined on the left arm, so inserting `a + b` on the
    /// virtual entry edge is inadmissible: the entry is not down-safe.
    const KILLS: &str = "fn p {
        entry:
          br c, l, r
        l:
          a = 1
          x = a + b
          jmp j
        r:
          jmp j
        j:
          obs x
          ret
        }";

    /// `entry -> join` is a critical edge, so the edge formulation must
    /// materialise a split block to host its insertion.
    const CRITICAL: &str = "fn crit {
        entry:
          br c, l, join
        l:
          x = a + b
          jmp join
        join:
          y = a + b
          obs y
          ret
        }";

    fn optimized(src: &str, alg: PreAlgorithm) -> (lcm_ir::Function, Optimized) {
        let f = parse_function(src).unwrap();
        let opt = optimize(&f, alg).unwrap();
        (f, opt)
    }

    #[test]
    fn flipped_plan_bit_is_rejected() {
        let (f, mut opt) = optimized(KILLS, PreAlgorithm::LazyEdge);
        assert!(inject(&mut opt, Fault::FlipPlanBit, 11));
        let err = validate_optimized(&f, &opt, ValidationLevel::Fast, 0).unwrap_err();
        assert!(
            matches!(
                err,
                ValidationError::UnsafeInsertion(_) | ValidationError::InsertionNotInLater { .. }
            ),
            "unexpected {err}"
        );
    }

    #[test]
    fn dropped_insertion_is_rejected() {
        let (f, mut opt) = optimized(DIAMOND, PreAlgorithm::LazyEdge);
        assert!(inject(&mut opt, Fault::DropInsertion, 5));
        let err = validate_optimized(&f, &opt, ValidationLevel::Fast, 0).unwrap_err();
        assert!(
            matches!(
                err,
                ValidationError::MaybeUnassigned(_) | ValidationError::InsertionBookkeeping { .. }
            ),
            "unexpected {err}"
        );
    }

    #[test]
    fn duplicated_insertion_is_rejected() {
        let (f, mut opt) = optimized(DIAMOND, PreAlgorithm::LazyEdge);
        assert!(inject(&mut opt, Fault::DuplicateInsertion, 5));
        let err = validate_optimized(&f, &opt, ValidationLevel::Fast, 0).unwrap_err();
        assert!(
            matches!(err, ValidationError::InsertionBookkeeping { .. }),
            "unexpected {err}"
        );
    }

    #[test]
    fn mistargeted_split_is_rejected() {
        let (f, mut opt) = optimized(CRITICAL, PreAlgorithm::LazyEdge);
        assert!(
            inject(&mut opt, Fault::MistargetSplit, 5),
            "expected a split block on the critical edge; blocks: {:?}",
            opt.function
                .block_ids()
                .map(|b| opt.function.block(b).name.clone())
                .collect::<Vec<_>>()
        );
        let err = validate_optimized(&f, &opt, ValidationLevel::Fast, 0).unwrap_err();
        assert!(
            matches!(
                err,
                ValidationError::Structural {
                    stage: "output",
                    error: VerifyError::Unreachable(_),
                }
            ),
            "unexpected {err}"
        );
    }

    #[test]
    fn corrupted_terminator_is_rejected() {
        let (f, mut opt) = optimized(DIAMOND, PreAlgorithm::LazyEdge);
        assert!(inject(&mut opt, Fault::CorruptTerminator, 5));
        let err = validate_optimized(&f, &opt, ValidationLevel::Fast, 0).unwrap_err();
        assert!(
            matches!(
                err,
                ValidationError::Structural {
                    stage: "output",
                    error: VerifyError::DanglingTarget { .. },
                }
            ),
            "unexpected {err}"
        );
    }

    #[test]
    fn every_fault_class_is_caught_across_seeds_and_algorithms() {
        // The exhaustive sweep: every applicable (fault, algorithm, seed)
        // combination must be rejected by the validator. The subject is
        // chosen per fault class so the corruption is always detectable.
        for fault in Fault::ALL {
            let src = match fault {
                Fault::FlipPlanBit => KILLS,
                Fault::MistargetSplit => CRITICAL,
                _ => DIAMOND,
            };
            for alg in [
                PreAlgorithm::Busy,
                PreAlgorithm::LazyEdge,
                PreAlgorithm::LazyNode,
            ] {
                for seed in 0..4u64 {
                    let (f, mut opt) = optimized(src, alg);
                    if !inject(&mut opt, fault, seed) {
                        continue; // fault class not applicable to this pass
                    }
                    let res = validate_optimized(&f, &opt, ValidationLevel::Full, seed);
                    assert!(
                        res.is_err(),
                        "{} survived {} (seed {seed})",
                        fault.name(),
                        alg.name()
                    );
                }
            }
        }
    }

    #[test]
    fn orphan_block_is_rejected_even_without_real_splits() {
        let (f, mut opt) = optimized(DIAMOND, PreAlgorithm::LazyEdge);
        inject_orphan_block(&mut opt);
        let err = validate_optimized(&f, &opt, ValidationLevel::Fast, 0).unwrap_err();
        assert!(
            matches!(
                err,
                ValidationError::Structural {
                    stage: "output",
                    error: VerifyError::Unreachable(_),
                }
            ),
            "unexpected {err}"
        );
    }

    #[test]
    fn corrupt_profile_perturbs_exactly_one_weight_deterministically() {
        use lcm_cfggen::{structured, synthetic_profile, GenOptions};
        let f = structured(5, &GenOptions::default());
        let p0 = synthetic_profile(&f, 9);
        let mut a = p0.clone();
        let mut b = p0.clone();
        assert!(corrupt_profile_weights(&mut a, 42));
        assert!(corrupt_profile_weights(&mut b, 42));
        assert_eq!(a, b);
        assert_ne!(a, p0);
        let diffs = a
            .entries
            .iter()
            .zip(&p0.entries)
            .filter(|(x, y)| x != y)
            .count();
        assert_eq!(diffs, 1);

        // A profile with no entries (edgeless function) cannot be
        // corrupted.
        let one = parse_function("fn one {\n entry:\n ret\n }").unwrap();
        let mut empty = lcm_cfggen::synthetic_profile(&one, 0);
        assert!(!corrupt_profile_weights(&mut empty, 1));
    }

    #[test]
    fn corrupted_profiles_never_produce_unsafe_placements() {
        use lcm_cfggen::{corpus, synthetic_profile, GenOptions};
        use lcm_core::{optimize_speculative, weights_or_unit, EdgeWeights};
        let mut refused = 0usize;
        let mut resolved = 0usize;
        for (i, f) in corpus(0xC0FF, 24, &GenOptions::default())
            .iter()
            .enumerate()
        {
            let mut p = synthetic_profile(f, 3);
            if !corrupt_profile_weights(&mut p, i as u64) {
                continue;
            }
            // Either the corruption breaks flow conservation and the
            // resolver refuses it (the driver falls back to unit weights),
            // or it happens to still conserve and resolves — in which case
            // the textual round trip accepts it too. Track both outcomes.
            match EdgeWeights::from_profile(f, &p) {
                Ok(_) => resolved += 1,
                Err(_) => refused += 1,
            }
            // In both cases the speculative pass must produce a fully
            // valid, observationally equivalent result: weights steer only
            // the cost model, never the safety argument.
            let w = weights_or_unit(f, Some(&p));
            let opt = optimize_speculative(f, &w).unwrap();
            validate_optimized(&f.clone(), &opt, ValidationLevel::Full, i as u64)
                .unwrap_or_else(|e| panic!("corrupted profile broke function {i}: {e}"));
        }
        // The corpus is large enough to exercise both outcomes.
        assert!(refused > 0, "no corruption was refused by resolution");
        assert!(resolved + refused >= 20);
    }

    #[test]
    fn dropped_store_kill_is_caught() {
        // A loop-carried may-alias store in a separate block from the
        // load: with the memory kill dropped, the load looks loop-invariant
        // and the planner hoists it, leaving `obs x` reading a stale cell.
        let f = parse_function(
            "fn alias {
             entry:
               i = 3
               jmp head
             head:
               x = load p
               obs x
               jmp body
             body:
               store p, i
               i = i - 1
               br i, head, done
             done:
               ret
             }",
        )
        .unwrap();
        let injected = optimize_with_dropped_store_kill(&f, 7)
            .unwrap()
            .expect("function has loads and a store");
        // The new validator rule fires on the corrupted predicate table —
        // the exact state a kill-dropping implementation would present.
        let uni = lcm_core::ExprUniverse::of(&f);
        let err = lcm_core::check_memory_kills(&f, &uni, &injected.corrupted).unwrap_err();
        assert!(
            matches!(err, ValidationError::MemoryKillDropped { .. }),
            "unexpected {err}"
        );
        // End-to-end, the result planned over those predicates is rejected
        // (full tier: the hoisted load observably reads a stale value).
        let res = validate_optimized(&f, &injected.opt, ValidationLevel::Full, 7);
        assert!(res.is_err(), "dropped store kill survived validation");
        // Deterministic per seed.
        let again = optimize_with_dropped_store_kill(&f, 7).unwrap().unwrap();
        assert_eq!(
            injected.opt.function.to_string(),
            again.opt.function.to_string()
        );
        // Not applicable to memory-free subjects.
        let pure = parse_function(DIAMOND).unwrap();
        assert!(optimize_with_dropped_store_kill(&pure, 0)
            .unwrap()
            .is_none());
    }

    #[test]
    fn stale_output_memo_is_never_replayed() {
        use lcm_driver::{BatchEngine, BatchOptions, IncrementalMode};
        use lcm_ir::parse_module;

        let edited = DIAMOND.replace("y = a + b", "y = a + b\n          a = 1");
        let m0 = parse_module(DIAMOND).unwrap();
        let m1 = parse_module(&edited).unwrap();
        let want = {
            let mut fresh = BatchEngine::new(BatchOptions::default());
            fresh.run_module_incremental(&m1)[0]
                .outcome
                .clone()
                .unwrap()
        };

        // A dirty function with a poisoned memo (key intact): the edit
        // changes the fingerprint, so the memo is bypassed, the unit
        // delta-solves, and the garbage text never surfaces.
        let mut engine = BatchEngine::new(BatchOptions::default());
        engine.run_module_incremental(&m0);
        let mut prev = engine.take_prev_solve("d").unwrap();
        poison_output_memo(&mut prev, 3, false);
        engine.put_prev_solve("d", prev);
        let units = engine.run_module_incremental(&m1);
        assert_ne!(units[0].mode, IncrementalMode::ZeroDirty);
        assert_eq!(units[0].outcome.clone().unwrap(), want);

        // An *identical* revision against a memo whose key rotted: nothing
        // fingerprints to the stale key, so the memo is bypassed and the
        // unit recomputes (and re-memoizes) the honest answer.
        let mut engine = BatchEngine::new(BatchOptions::default());
        let first = engine.run_module_incremental(&m0)[0]
            .outcome
            .clone()
            .unwrap();
        let mut prev = engine.take_prev_solve("d").unwrap();
        poison_output_memo(&mut prev, 4, true);
        engine.put_prev_solve("d", prev);
        let units = engine.run_module_incremental(&m0);
        assert_ne!(units[0].mode, IncrementalMode::ZeroDirty);
        assert_eq!(units[0].outcome.clone().unwrap(), first);
        // ... after which the honest memo is back: the next identical
        // revision replays it.
        let units = engine.run_module_incremental(&m0);
        assert_eq!(units[0].mode, IncrementalMode::ZeroDirty);
        assert_eq!(units[0].outcome.clone().unwrap(), first);
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        for fault in Fault::ALL {
            let src = if fault == Fault::MistargetSplit {
                CRITICAL
            } else {
                DIAMOND
            };
            let (_, mut a) = optimized(src, PreAlgorithm::LazyEdge);
            let (_, mut b) = optimized(src, PreAlgorithm::LazyEdge);
            let ra = inject(&mut a, fault, 99);
            let rb = inject(&mut b, fault, 99);
            assert_eq!(ra, rb);
            for blk in a.function.block_ids() {
                assert_eq!(a.function.block(blk), b.function.block(blk));
            }
            assert_eq!(a.plan.entry_insert, b.plan.entry_insert);
        }
    }
}
