//! One targeted test per [`VerifyError`] variant, proving the validator's
//! post-pass structural re-check fires on each class of CFG corruption.
//!
//! Each test optimizes a clean function, then mutates the *output* so
//! that exactly the targeted invariant is violated, and asserts
//! `validate_optimized` reports `Structural { stage: "output" }` with the
//! matching variant.

use lcm_core::validate::{validate_optimized, ValidationError, ValidationLevel};
use lcm_core::{optimize, Optimized, PreAlgorithm};
use lcm_ir::{parse_function, BlockData, BlockId, Function, Operand, Terminator, Var, VerifyError};

const DIAMOND: &str = "fn d {
    entry:
      br c, l, r
    l:
      x = a + b
      jmp join
    r:
      jmp join
    join:
      y = a + b
      obs y
      ret
    }";

fn subject() -> (Function, Optimized) {
    let f = parse_function(DIAMOND).unwrap();
    let opt = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
    (f, opt)
}

fn expect_structural(f: &Function, opt: &Optimized) -> VerifyError {
    match validate_optimized(f, opt, ValidationLevel::Fast, 0) {
        Err(ValidationError::Structural {
            stage: "output",
            error,
        }) => error,
        other => panic!("expected an output structural error, got {other:?}"),
    }
}

#[test]
fn dangling_target_fires() {
    let (f, mut opt) = subject();
    let n = opt.function.num_blocks();
    let entry = opt.function.entry();
    opt.function.block_mut(entry).term = Terminator::Jump(BlockId::from_index(n + 3));
    assert!(matches!(
        expect_structural(&f, &opt),
        VerifyError::DanglingTarget { .. }
    ));
}

#[test]
fn entry_has_predecessors_fires() {
    let (f, mut opt) = subject();
    // Loop the left arm back to the entry instead of the join.
    let l = opt.function.block_by_name("l").unwrap();
    let entry = opt.function.entry();
    opt.function.block_mut(l).term = Terminator::Jump(entry);
    assert!(matches!(
        expect_structural(&f, &opt),
        VerifyError::EntryHasPredecessors(_)
    ));
}

#[test]
fn stray_exit_fires() {
    let (f, mut opt) = subject();
    let l = opt.function.block_by_name("l").unwrap();
    opt.function.block_mut(l).term = Terminator::Exit;
    assert!(matches!(
        expect_structural(&f, &opt),
        VerifyError::StrayExit(_)
    ));
}

#[test]
fn exit_not_ret_fires() {
    let (f, mut opt) = subject();
    let exit = opt.function.exit();
    opt.function.block_mut(exit).term = Terminator::Jump(exit);
    assert!(matches!(
        expect_structural(&f, &opt),
        VerifyError::ExitNotRet(_)
    ));
}

#[test]
fn unreachable_fires() {
    let (f, mut opt) = subject();
    let exit = opt.function.exit();
    let mut orphan = BlockData::new("orphan");
    orphan.term = Terminator::Jump(exit);
    opt.function.add_block(orphan);
    assert!(matches!(
        expect_structural(&f, &opt),
        VerifyError::Unreachable(_)
    ));
}

#[test]
fn cannot_reach_exit_fires() {
    let (f, mut opt) = subject();
    // A reachable self-loop: the left arm spins forever.
    let mut spin = BlockData::new("spin");
    let spin_id = BlockId::from_index(opt.function.num_blocks());
    spin.term = Terminator::Jump(spin_id);
    let spin_id = opt.function.add_block(spin);
    let l = opt.function.block_by_name("l").unwrap();
    opt.function.block_mut(l).term = Terminator::Jump(spin_id);
    assert!(matches!(
        expect_structural(&f, &opt),
        VerifyError::CannotReachExit(_)
    ));
}

#[test]
fn unknown_var_fires() {
    let (f, mut opt) = subject();
    let join = opt.function.block_by_name("join").unwrap();
    let bogus = Var(opt.function.symbols.len() as u32 + 12);
    opt.function.push_observe(join, Operand::Var(bogus));
    assert!(matches!(
        expect_structural(&f, &opt),
        VerifyError::UnknownVar(_)
    ));
}
