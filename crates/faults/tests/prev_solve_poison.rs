//! PrevSolve-poisoning mutations: the daemon's incremental hot path
//! retains AVAIL/ANTIC/LATER fixpoints per function and delta-solves the
//! next revision against them, so the failure mode to fear is corrupted
//! retained state flowing straight into a placement. These tests poison
//! the state with [`lcm_faults::poison_prev_solve`] and pin the contract
//! of `optimize_incremental`'s unconditional fast-tier validation:
//!
//! 1. a pinned (subject, seed) pair where the poisoned fixpoints produce
//!    an invalid placement and the validator **refuses** it;
//! 2. across a corpus × seeds × (unedited and edited next revisions),
//!    every poisoned run is either caught (typed error) or produces a
//!    program that survives **full**-tier validation against its input —
//!    structural re-verification plus seeded differential execution — so
//!    a scramble can cost precision (a conservative placement) but never
//!    correctness; and at least some runs in the sweep are caught, so the
//!    mutation is known to be live, not vacuously harmless.

use lcm_cfggen::{corpus, mutate_function, seeded, GenOptions};
use lcm_core::validate::{validate_optimized, ValidationLevel};
use lcm_core::{optimize_incremental, IncrementalState};
use lcm_faults::poison_prev_solve;
use lcm_ir::parse_function;

/// `a + b` is computed on one arm only and `a` is redefined there, so most
/// scrambles of the fixpoints claim placements the analyses never justify.
const KILLS: &str = "fn p {
    entry:
      br c, l, r
    l:
      a = 1
      x = a + b
      jmp j
    r:
      x = a + b
      jmp j
    j:
      obs x
      ret
    }";

#[test]
fn pinned_poison_is_refused_by_the_validator() {
    let f = parse_function(KILLS).unwrap();
    let (_, mut state) = IncrementalState::fresh(&f).unwrap();
    poison_prev_solve(&mut state, 3);
    let err = optimize_incremental(&state, &f, 0).unwrap_err();
    // The poison surfaces as a typed failure — a validation rejection or a
    // solver divergence — never as an Ok carrying a wrong program.
    let msg = err.to_string();
    assert!(!msg.is_empty(), "typed error expected, got {err:?}");
}

#[test]
fn poisoned_prev_solve_is_caught_or_harmless_never_silently_wrong() {
    let mut caught = 0usize;
    let mut harmless = 0usize;
    for (i, f) in corpus(0x9015_0ED, 12, &GenOptions::default())
        .iter()
        .enumerate()
    {
        // The daemon scenario: the retained state is poisoned, then the
        // function comes back either unedited or with a content edit.
        let mut edited = f.clone();
        let mut rng = seeded(0xFA17 ^ i as u64);
        mutate_function(&mut edited, &mut rng, 0.0);
        for next in [f, &edited] {
            for seed in 0..4u64 {
                let (_, mut state) = IncrementalState::fresh(f).unwrap();
                poison_prev_solve(&mut state, seed);
                match optimize_incremental(&state, next, 7) {
                    Ok(out) => {
                        validate_optimized(next, &out.optimized, ValidationLevel::Full, seed)
                            .unwrap_or_else(|e| {
                                panic!("fn {i} seed {seed}: poisoned state escaped silently: {e}")
                            });
                        harmless += 1;
                    }
                    Err(_) => caught += 1,
                }
            }
        }
    }
    assert!(
        caught > 0,
        "no poisoned run was ever caught ({harmless} harmless) — the mutation is dead"
    );
}
