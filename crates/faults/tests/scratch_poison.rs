//! Scratch-isolation mutations: the batch driver hands every worker one
//! reused [`SolverScratch`], so the failure mode to fear is state
//! bleeding from one solve into the next. These tests poison the arena
//! the way a broken `prepare()` would and pin down all three outcomes:
//!
//! 1. poison reaching the placement (LATER) solve produces an invalid
//!    program that the **fast** validation tier refuses (pinned seed);
//! 2. poison planted at the *function* boundary — landing on the next
//!    availability solve — is conservative-or-caught, never a silently
//!    wrong program, and the scratch recovers on the following solve;
//! 3. the non-poisoned reuse path (what batch mode actually runs) is
//!    bit-identical to fresh-scratch optimization across a corpus.

use lcm_cfggen::{corpus, GenOptions};
use lcm_core::validate::{validate_optimized, ValidationError, ValidationLevel};
use lcm_core::{optimize, optimize_with, PreAlgorithm};
use lcm_dataflow::{SolveStrategy, SolverScratch};
use lcm_faults::optimize_with_poisoned_scratch;
use lcm_ir::parse_function;

/// `a + b` is only computed on the loop path, `a * b` only on the exit
/// path, so neither is anticipable at the loop header: any insertion
/// hoisted to the `entry -> head` edge is provably unsafe.
const LOOP: &str = "fn l {
    entry:
      jmp head
    head:
      br c, body, exit
    body:
      x = a + b
      obs x
      jmp head
    exit:
      y = a * b
      obs y
      ret
    }";

#[test]
fn poisoned_scratch_placement_is_caught_by_fast_validation() {
    let f = parse_function(LOOP).unwrap();
    let mut scratch = SolverScratch::new();
    // Pinned seed: the scrambled LATER fixpoint claims a placement on the
    // entry edge that the analyses never justified.
    let opt = optimize_with_poisoned_scratch(&f, 1, &mut scratch).unwrap();
    let err = validate_optimized(&f, &opt, ValidationLevel::Fast, 0).unwrap_err();
    assert!(
        matches!(
            err,
            ValidationError::UnsafeInsertion(_) | ValidationError::InsertionNotInLater { .. }
        ),
        "unexpected {err}"
    );

    // The poison was a one-shot skip flag: the very next solve on the same
    // scratch reinitialises and produces the clean result again.
    let clean = optimize(&f, PreAlgorithm::LazyEdge).unwrap();
    let recovered = optimize_with(
        &f,
        PreAlgorithm::LazyEdge,
        SolveStrategy::default(),
        &mut scratch,
    )
    .unwrap();
    assert_eq!(recovered.plan.edge_inserts, clean.plan.edge_inserts);
    assert_eq!(recovered.plan.entry_insert, clean.plan.entry_insert);
    validate_optimized(&f, &recovered, ValidationLevel::Fast, 0).unwrap();
}

#[test]
fn function_boundary_poison_is_conservative_or_caught_and_recovers() {
    // Poison planted *between functions* lands on the next availability
    // solve. A must-problem restarted from garbage settles at or below its
    // true fixpoint, and under-approximated availability only makes LCM
    // more conservative — so the output is either still a valid program
    // (which fast validation accepts) or the solve diverges loudly. What
    // can never happen is a silently wrong program.
    let strategy = SolveStrategy::default();
    for (i, f) in corpus(0xB1EED, 24, &GenOptions::default())
        .iter()
        .enumerate()
    {
        let clean = optimize(f, PreAlgorithm::LazyEdge).unwrap();
        for seed in 0..3u64 {
            let mut scratch = SolverScratch::new();
            optimize_with(f, PreAlgorithm::LazyEdge, strategy, &mut scratch).unwrap();
            scratch.poison_for_fault_injection(seed);
            match optimize_with(f, PreAlgorithm::LazyEdge, strategy, &mut scratch) {
                Ok(opt) => {
                    validate_optimized(f, &opt, ValidationLevel::Fast, 0).unwrap_or_else(|e| {
                        panic!("fn {i} seed {seed}: invalid program slipped through: {e}")
                    });
                }
                Err(_) => {} // divergence is the loud failure mode
            }
            // Either way the arena is clean again afterwards.
            let recovered =
                optimize_with(f, PreAlgorithm::LazyEdge, strategy, &mut scratch).unwrap();
            assert_eq!(recovered.plan.edge_inserts, clean.plan.edge_inserts);
            assert_eq!(recovered.plan.entry_insert, clean.plan.entry_insert);
        }
    }
}

#[test]
fn unpoisoned_scratch_reuse_never_bleeds_across_functions() {
    // The actual batch-mode path: one scratch across many differently
    // shaped functions must reproduce fresh-scratch results bit for bit.
    let mut scratch = SolverScratch::new();
    let mut fns = corpus(0xC1EA_4, 30, &GenOptions::default());
    fns.extend(corpus(0xC1EA_5, 6, &GenOptions::sized(90)));
    for f in &fns {
        let fresh = optimize(f, PreAlgorithm::LazyEdge).unwrap();
        let reused = optimize_with(
            f,
            PreAlgorithm::LazyEdge,
            SolveStrategy::default(),
            &mut scratch,
        )
        .unwrap();
        assert_eq!(reused.plan.edge_inserts, fresh.plan.edge_inserts);
        assert_eq!(reused.plan.entry_insert, fresh.plan.entry_insert);
        for b in fresh.function.block_ids() {
            assert_eq!(reused.function.block(b), fresh.function.block(b));
        }
    }
}
