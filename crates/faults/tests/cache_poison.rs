//! Cache-poisoning mutation tests for the batch driver.
//!
//! The plan cache stores enough pipeline state to re-validate every hit,
//! so a corrupted entry must be caught by the same validator that guards
//! the live pipeline: poison an entry through
//! [`lcm_faults::poison_cached_plan`], request the same body again, and
//! the hit must fail with [`FailureKind::PoisonedCache`] instead of
//! serving the poisoned plan. With validation off the driver trusts the
//! cache — that trade-off is pinned down here too.

use lcm_core::validate::ValidationLevel;
use lcm_driver::{
    BatchEngine, BatchOptions, BatchUnit, CacheDisposition, FailureKind, PlanCache, UnitOutcome,
};
use lcm_faults::{poison_cached_plan, Fault};
use lcm_ir::{parse_function, Function};

/// The diamond with a partially redundant `a + b`: LCM inserts on the
/// empty arm and deletes at the join, so the cached result has material
/// for every fault class used below.
fn diamond(name: &str) -> Function {
    parse_function(&format!(
        "fn {name} {{
         entry:
           br c, l, r
         l:
           x = a + b
           jmp join
         r:
           jmp join
         join:
           y = a + b
           obs y
           ret
         }}"
    ))
    .expect("valid fixture")
}

fn unit(f: &Function) -> BatchUnit {
    BatchUnit {
        file: None,
        profile: None,
        function: f.clone(),
    }
}

/// Fault classes the fast validation tier detects on the diamond (the
/// plan-bit flip needs a subject where the flipped point is unsafe, so it
/// is exercised in the main fault suite instead).
const CACHE_FAULTS: [Fault; 3] = [
    Fault::DropInsertion,
    Fault::DuplicateInsertion,
    Fault::CorruptTerminator,
];

#[test]
fn poisoned_entry_is_rejected_on_hit() {
    for fault in CACHE_FAULTS {
        let mut engine = BatchEngine::new(BatchOptions::default());
        let first_fn = diamond("first");
        let first = engine.run(vec![unit(&first_fn)]);
        assert_eq!(first.totals.ok, 1, "{}: priming run failed", fault.name());

        assert!(
            poison_cached_plan(engine.cache_mut(), &first_fn, fault, 5),
            "{}: fault did not land",
            fault.name()
        );

        // Same body under another name: a hit, which revalidation rejects.
        let second = engine.run(vec![unit(&diamond("second"))]);
        let report = &second.units[0];
        assert_eq!(report.cache, CacheDisposition::Hit);
        let UnitOutcome::Failed(e) = &report.outcome else {
            panic!("{}: poisoned hit was served", fault.name());
        };
        assert_eq!(e.kind, FailureKind::PoisonedCache, "{}", fault.name());
        assert_eq!(second.totals.failed, 1);
        assert_eq!(second.totals.ok, 0);
    }
}

#[test]
fn poisoned_entry_fails_only_the_hit_unit() {
    let mut engine = BatchEngine::new(BatchOptions::default());
    let first_fn = diamond("first");
    engine.run(vec![unit(&first_fn)]);
    assert!(poison_cached_plan(
        engine.cache_mut(),
        &first_fn,
        Fault::CorruptTerminator,
        7
    ));

    // A batch mixing the poisoned body with a fresh one: the fresh unit
    // must still complete.
    let fresh = parse_function("fn fresh {\nentry:\n  z = a * b\n  obs z\n  ret\n}").unwrap();
    let result = engine.run(vec![unit(&diamond("again")), unit(&fresh)]);
    assert_eq!(result.totals.failed, 1);
    assert_eq!(result.totals.ok, 1);
    assert!(matches!(result.units[1].outcome, UnitOutcome::Ok(_)));
}

#[test]
fn validation_off_trusts_the_cache() {
    // With validation disabled there is no hit-revalidation, so the
    // poisoned entry is served — the documented trade-off of `--validate
    // off`, pinned here so a change to it is a conscious one.
    let mut engine = BatchEngine::new(BatchOptions {
        validate: ValidationLevel::Off,
        ..BatchOptions::default()
    });
    let first_fn = diamond("first");
    engine.run(vec![unit(&first_fn)]);
    assert!(poison_cached_plan(
        engine.cache_mut(),
        &first_fn,
        Fault::DropInsertion,
        5
    ));
    let second = engine.run(vec![unit(&diamond("second"))]);
    assert_eq!(second.totals.ok, 1);
    assert_eq!(second.units[0].cache, CacheDisposition::Hit);
}

#[test]
fn poisoning_is_a_noop_without_a_matching_entry() {
    let mut cache = PlanCache::new(0);
    assert!(!poison_cached_plan(
        &mut cache,
        &diamond("absent"),
        Fault::CorruptTerminator,
        1
    ));
    assert!(cache.is_empty());
}
