//! Mutation tests for the `lcm-cache-v1` corruption classes: every
//! [`CacheFileFault`] must be refused by `load_cache`, quarantined by
//! `load_or_quarantine` (cold cache, evidence preserved in the `.corrupt`
//! sidecar), and survived by the batch engine — a corrupt file costs
//! cache warmth, never correctness or availability.

use std::path::{Path, PathBuf};

use lcm_driver::{
    corrupt_sidecar, load_cache, load_or_quarantine, report, save_cache, tmp_path, BatchEngine,
    BatchOptions, CacheFileError, LifetimeCounters, LoadStatus, PlanCache, CACHE_FORMAT_VERSION,
};
use lcm_faults::{corrupt_cache_file, CacheFileFault};
use lcm_ir::parse_module;

const MODULE: &str = "fn d {
    entry:
      br c, l, r
    l:
      x = a + b
      jmp join
    r:
      jmp join
    join:
      y = a + b
      obs y
      ret
    }

    fn straight {
    entry:
      x = a * b
      y = a * b
      obs y
      ret
    }";

/// A scratch directory unique to this test, cleaned up on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("lcm-cache-file-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self, file: &str) -> PathBuf {
        self.0.join(file)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Runs the batch engine over [`MODULE`] against `path` and flushes,
/// leaving a genuine warm cache file behind. Returns the text output.
fn build_cache_file(path: &Path) -> String {
    let m = parse_module(MODULE).expect("module parses");
    let mut engine = BatchEngine::with_cache_file(BatchOptions::default(), path);
    assert!(matches!(engine.load_status(), Some(LoadStatus::Fresh)));
    let result = engine.run_module(&m);
    assert_eq!(result.totals.failed, 0);
    engine.flush_cache_file().expect("flush cache file");
    assert!(path.exists());
    report::render_text(&result)
}

#[test]
fn every_corruption_class_is_refused_across_seeds() {
    let dir = TempDir::new("refused");
    for fault in CacheFileFault::ALL {
        for seed in 0..4u64 {
            let path = dir.path(&format!("{}-{seed}.cache", fault.name()));
            build_cache_file(&path);
            assert!(
                corrupt_cache_file(&path, fault, seed).expect("corruptor io"),
                "{} did not land (seed {seed})",
                fault.name()
            );
            let err = match load_cache(&path, 0) {
                Err(e) => e,
                Ok(_) => panic!("{} (seed {seed}) was not refused", fault.name()),
            };
            // Classes with a deterministic signature pin it exactly; the
            // positional ones (truncate, flip-byte) may surface as any
            // defect, and being refused at all is the contract.
            match fault {
                CacheFileFault::MagicSmash => {
                    assert!(matches!(err, CacheFileError::NotACache), "got {err}");
                }
                CacheFileFault::VersionSkew => {
                    assert!(
                        matches!(err, CacheFileError::VersionSkew { found }
                                 if found == CACHE_FORMAT_VERSION + 1),
                        "got {err}"
                    );
                }
                CacheFileFault::CounterTamper => {
                    assert!(matches!(err, CacheFileError::FooterChecksum), "got {err}");
                }
                CacheFileFault::TrailingGarbage => {
                    assert!(
                        matches!(err, CacheFileError::TrailingGarbage { extra } if extra > 0),
                        "got {err}"
                    );
                }
                CacheFileFault::Truncate | CacheFileFault::FlipByte => {}
            }
        }
    }
}

#[test]
fn corruption_is_deterministic_per_seed() {
    let dir = TempDir::new("deterministic");
    for fault in CacheFileFault::ALL {
        let a = dir.path(&format!("{}-a.cache", fault.name()));
        let b = dir.path(&format!("{}-b.cache", fault.name()));
        build_cache_file(&a);
        build_cache_file(&b);
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        assert!(corrupt_cache_file(&a, fault, 7).unwrap());
        assert!(corrupt_cache_file(&b, fault, 7).unwrap());
        assert_eq!(
            std::fs::read(&a).unwrap(),
            std::fs::read(&b).unwrap(),
            "{} is not deterministic",
            fault.name()
        );
    }
}

#[test]
fn quarantine_preserves_evidence_and_restores_availability() {
    let dir = TempDir::new("quarantine");
    for fault in CacheFileFault::ALL {
        let path = dir.path(&format!("{}.cache", fault.name()));
        build_cache_file(&path);
        assert!(corrupt_cache_file(&path, fault, 1).unwrap());
        let corrupted = std::fs::read(&path).unwrap();

        let (cache, counters, status) = load_or_quarantine(&path, 0);
        assert_eq!(cache.len(), 0, "{}: cache must start cold", fault.name());
        assert_eq!(counters.quarantines, 1);
        assert!(
            matches!(status, LoadStatus::Quarantined { .. }),
            "{}: {status:?}",
            fault.name()
        );
        // The evidence moved to the sidecar byte-for-byte; the original
        // path is free again, so the next save simply works.
        let sidecar = corrupt_sidecar(&path);
        assert_eq!(std::fs::read(&sidecar).unwrap(), corrupted);
        assert!(!path.exists());
        save_cache(&path, &PlanCache::new(0), counters).unwrap();
        let (_, reloaded) = load_cache(&path, 0).unwrap();
        assert_eq!(reloaded.quarantines, 1);
    }
}

#[test]
fn batch_engine_survives_every_fault_with_identical_answers() {
    let dir = TempDir::new("survives");
    let m = parse_module(MODULE).expect("module parses");
    // The reference answer comes from a cold, file-less engine.
    let mut cold = BatchEngine::new(BatchOptions::default());
    let want = report::render_text(&cold.run_module(&m));
    for fault in CacheFileFault::ALL {
        let path = dir.path(&format!("{}.cache", fault.name()));
        let first = build_cache_file(&path);
        assert_eq!(first, want, "warm run answer drifted");
        assert!(corrupt_cache_file(&path, fault, 3).unwrap());

        let mut engine = BatchEngine::with_cache_file(BatchOptions::default(), &path);
        assert!(
            matches!(engine.load_status(), Some(LoadStatus::Quarantined { .. })),
            "{}: corrupt file was not quarantined",
            fault.name()
        );
        let result = engine.run_module(&m);
        assert_eq!(result.totals.failed, 0, "{}: units failed", fault.name());
        assert_eq!(
            report::render_text(&result),
            want,
            "{}: answers diverged after quarantine",
            fault.name()
        );
        // The recomputed cache flushes cleanly over the freed path and the
        // quarantine is remembered in the lifetime counters.
        engine.flush_cache_file().unwrap();
        let (reloaded, counters) = load_cache(&path, 0).unwrap();
        assert!(reloaded.len() > 0);
        assert_eq!(counters.quarantines, 1);
    }
}

#[test]
fn stray_tmp_file_never_shadows_the_cache() {
    // A crash between staging and rename leaves `<path>.tmp`; the load
    // path must ignore it entirely and the next save must replace it.
    let dir = TempDir::new("stray-tmp");
    let path = dir.path("plans.cache");
    build_cache_file(&path);
    let tmp = tmp_path(&path);
    std::fs::write(&tmp, b"half-written garbage").unwrap();
    let (cache, _, status) = load_or_quarantine(&path, 0);
    assert!(matches!(status, LoadStatus::Loaded { .. }), "{status:?}");
    assert!(cache.len() > 0);
    save_cache(&path, &cache, LifetimeCounters::default()).unwrap();
    assert!(!tmp.exists(), "save must consume the tmp staging file");
    load_cache(&path, 0).unwrap();
}
