//! The acceptance gate for the checked pipeline: every PRE pass, run over
//! the seeded generator corpus, validates clean at the `full` tier —
//! structural re-verification, plan admissibility, definite assignment,
//! insertion bookkeeping, the LATER re-check and seeded differential
//! execution all pass on every generated function.

use lcm_cfggen::{corpus, GenOptions};
use lcm_core::validate::{validate_optimized, ValidationLevel};
use lcm_core::{optimize, PreAlgorithm};

#[test]
fn every_pass_validates_clean_across_the_corpus() {
    let functions = corpus(0xC0FFEE, 12, &GenOptions::sized(10));
    for (i, f) in functions.iter().enumerate() {
        for alg in PreAlgorithm::ALL {
            let opt = optimize(f, alg)
                .unwrap_or_else(|e| panic!("{} diverged on corpus #{i}: {e}", alg.name()));
            let report = validate_optimized(f, &opt, ValidationLevel::Full, 0xFADE + i as u64)
                .unwrap_or_else(|e| panic!("{} invalid on corpus #{i}: {e}", alg.name()));
            assert!(report.checks_run >= 5, "{} ran too few checks", alg.name());
            assert_eq!(report.inputs_sampled, 4);
        }
    }
}

#[test]
fn validation_cost_is_observable() {
    // The report carries non-trivial timing for the tiers that ran.
    let f = &corpus(7, 1, &GenOptions::sized(8))[0];
    let opt = optimize(f, PreAlgorithm::LazyEdge).unwrap();
    let fast = validate_optimized(f, &opt, ValidationLevel::Fast, 0).unwrap();
    assert!(fast.static_nanos > 0);
    assert_eq!(fast.differential_nanos, 0);
    assert_eq!(fast.inputs_sampled, 0);
    let full = validate_optimized(f, &opt, ValidationLevel::Full, 0).unwrap();
    assert!(full.differential_nanos > 0);
    assert!(full.checks_run > fast.checks_run);
}
